package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
)

func pkt(flow, length int) flit.Packet { return flit.Packet{Flow: flow, Length: length} }

// serveWhileBacklogged serves packets until any flow's queue empties,
// so that every flow is active for the entire measured interval — the
// regime the fairness measure (Definition 1) is stated for.
func serveWhileBacklogged(d *harness.Driver, n int) {
	for {
		for f := 0; f < n; f++ {
			if d.QueueLen(f) == 0 {
				return
			}
		}
		d.ServeOne()
	}
}

// TestFigure1Semantics walks a hand-computed execution in the style
// of the paper's Figure 3 and checks every allowance, sent count and
// surplus count against the recurrences
//
//	A_i(r)  = 1 + MaxSC(r-1) - SC_i(r-1)
//	SC_i(r) = Sent_i(r) - A_i(r).
func TestFigure1Semantics(t *testing.T) {
	e := core.New()
	rec := &core.TraceRecorder{}
	e.SetTrace(rec)
	d := harness.New(3, e)

	// Backlog three flows with deterministic packet lengths.
	for _, l := range []int{32, 8, 8, 8, 8} {
		d.Arrive(pkt(0, l))
	}
	for _, l := range []int{16, 8, 8, 8, 8} {
		d.Arrive(pkt(1, l))
	}
	for _, l := range []int{12, 20, 4, 4, 4} {
		d.Arrive(pkt(2, l))
	}

	// Round 1: every SC is 0, PreviousMaxSC is 0, so A=1 for all.
	// Each flow sends exactly its head packet.
	// flow0: sent 32, SC 31; flow1: sent 16, SC 15; flow2: sent 12, SC 11.
	// MaxSC(1) = 31.
	// Round 2: A0 = 1+31-31 = 1  -> sends 8,   SC0 = 7
	//          A1 = 1+31-15 = 17 -> sends 8+8+8 = 24 >= 17, SC1 = 7
	//          A2 = 1+31-11 = 21 -> sends 20+4 = 24 >= 21,  SC2 = 3
	// MaxSC(2) = 7.
	// Round 3: A0 = 1+7-7 = 1 -> 8, SC0 = 7
	//          A1 = 1+7-7 = 1 -> 8, SC1 = 7
	//          A2 = 1+7-3 = 5 -> 4+4 = 8 >= 5, SC2 = 3 and flow 2 drains.
	type want struct {
		flow                     int
		allowance, sent, surplus int64
	}
	wants := [][]want{
		{{0, 1, 32, 31}, {1, 1, 16, 15}, {2, 1, 12, 11}},
		{{0, 1, 8, 7}, {1, 17, 24, 7}, {2, 21, 24, 3}},
		{{0, 1, 8, 7}, {1, 1, 8, 7}, {2, 5, 8, 3}},
	}
	// Serve 3 rounds' worth of packets: 3 + 6 + 4 = 13 packets (flow
	// 2's round-3 opportunity spans two 4-flit packets).
	d.ServeN(13)

	for r, ws := range wants {
		events := rec.EventsOfRound(int64(r + 1))
		if len(events) != len(ws) {
			t.Fatalf("round %d: %d events, want %d: %+v", r+1, len(events), len(ws), events)
		}
		for k, w := range ws {
			got := events[k]
			if got.Flow != w.flow || got.Allowance != w.allowance || got.Sent != w.sent || got.Surplus != w.surplus {
				t.Errorf("round %d slot %d: got flow=%d A=%d sent=%d SC=%d, want flow=%d A=%d sent=%d SC=%d",
					r+1, k, got.Flow, got.Allowance, got.Sent, got.Surplus,
					w.flow, w.allowance, w.sent, w.surplus)
			}
		}
	}
	if rec.MaxSCOfRound(1) != 31 || rec.MaxSCOfRound(2) != 7 {
		t.Errorf("MaxSC per round = %d, %d; want 31, 7",
			rec.MaxSCOfRound(1), rec.MaxSCOfRound(2))
	}
	if !rec.EventsOfRound(3)[2].Left {
		t.Error("flow 2 should have drained in round 3")
	}
}

// TestRoundDefinition_LateJoiner reproduces Figure 2: a flow that
// becomes active after a round has started is not visited until the
// next round.
func TestRoundDefinition_LateJoiner(t *testing.T) {
	e := core.New()
	rec := &core.TraceRecorder{}
	e.SetTrace(rec)
	d := harness.New(4, e)

	// Flows A=0, B=1, C=2 active at round start.
	for f := 0; f < 3; f++ {
		d.Arrive(pkt(f, 4))
		d.Arrive(pkt(f, 4))
	}
	// Serve flow 0's opportunity (1 packet: A=1, sent=4).
	d.ServeOne()
	// Flow D joins mid-round.
	d.Arrive(pkt(3, 4))
	// Finish the round: flows 1 and 2.
	d.ServeOne()
	d.ServeOne()
	r1 := rec.EventsOfRound(1)
	if len(r1) != 3 {
		t.Fatalf("round 1 served %d flows, want 3 (D must wait)", len(r1))
	}
	for i, e := range r1 {
		if e.Flow != i {
			t.Errorf("round 1 order: slot %d = flow %d", i, e.Flow)
		}
	}
	// Round 2 must include D.
	d.ServeN(4)
	r2 := rec.EventsOfRound(2)
	found := false
	for _, e := range r2 {
		if e.Flow == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("flow D not served in round 2: %+v", r2)
	}
}

// TestLemma1_SurplusBounds checks 0 <= SC_i(r) <= m-1 after every
// service opportunity, for random backlogged workloads.
func TestLemma1_SurplusBounds(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		e := core.New()
		rec := &core.TraceRecorder{}
		e.SetTrace(rec)
		const n = 5
		d := harness.New(n, e)
		src := rng.New(seed)
		dist := rng.NewUniform(1, 37)
		m := 0
		for i := 0; i < 400; i++ {
			for f := 0; f < n; f++ {
				l := dist.Draw(src)
				if l > m {
					m = l
				}
				d.Arrive(pkt(f, l))
			}
		}
		d.Drain()
		for _, ev := range rec.Events {
			// The recorded surplus is Sent - A before the drain reset;
			// Lemma 1's bound applies to the retained SC, but the raw
			// surplus obeys the same upper bound and must never exceed
			// m-1. The lower bound can be violated only by a drain
			// (queue emptied below allowance), which Left marks.
			if ev.Surplus > int64(m-1) {
				t.Fatalf("seed %d: surplus %d > m-1 = %d (flow %d round %d)",
					seed, ev.Surplus, m-1, ev.Flow, ev.Round)
			}
			if !ev.Left && ev.Surplus < 0 {
				t.Fatalf("seed %d: negative surplus %d without drain", seed, ev.Surplus)
			}
		}
	}
}

// TestTheorem2_ServiceBounds verifies, for continuously backlogged
// flows, that the flits N sent by a flow over any window of n
// consecutive rounds satisfy
//
//	n + Σ MaxSC(r) - (m-1)  <=  N  <=  n + Σ MaxSC(r) + (m-1)
//
// with the sum over r = k-1 .. k+n-2 (Theorem 2).
func TestTheorem2_ServiceBounds(t *testing.T) {
	e := core.New()
	rec := &core.TraceRecorder{}
	e.SetTrace(rec)
	const flows = 4
	d := harness.New(flows, e)
	src := rng.New(77)
	dist := rng.NewUniform(1, 25)
	m := 0
	for i := 0; i < 3000; i++ {
		for f := 0; f < flows; f++ {
			l := dist.Draw(src)
			if l > m {
				m = l
			}
			d.Arrive(pkt(f, l))
		}
	}
	// Serve a lot, but keep every queue backlogged.
	d.ServeN(6000)

	// Collect per-round, per-flow sent and MaxSC from the trace.
	lastRound := rec.Events[len(rec.Events)-1].Round
	// Skip the (possibly) incomplete final round.
	complete := lastRound - 1
	maxSC := make([]int64, complete+1) // index by round, 1-based
	sent := make([]map[int]int64, complete+1)
	for r := int64(1); r <= complete; r++ {
		maxSC[r] = rec.MaxSCOfRound(r)
		sent[r] = map[int]int64{}
	}
	for _, ev := range rec.Events {
		if ev.Round <= complete {
			sent[ev.Round][ev.Flow] += ev.Sent
		}
	}
	// All flows stayed backlogged, so every flow appears in every
	// complete round.
	for k := int64(1); k+3 <= complete; k += 2 {
		for n := int64(1); n <= 4 && k+n-1 <= complete; n++ {
			var sum int64
			for r := k - 1; r <= k+n-2; r++ {
				if r >= 1 {
					sum += maxSC[r]
				} // MaxSC(0) = 0
			}
			for f := 0; f < flows; f++ {
				var N int64
				for r := k; r <= k+n-1; r++ {
					N += sent[r][f]
				}
				lo := n + sum - int64(m-1)
				hi := n + sum + int64(m-1)
				if N < lo || N > hi {
					t.Fatalf("Theorem 2 violated: flow %d rounds [%d,%d]: N=%d not in [%d,%d] (m=%d)",
						f, k, k+n-1, N, lo, hi, m)
				}
			}
		}
	}
}

// TestTheorem3_FairnessBound checks FM < 3m on randomized backlogged
// workloads across seeds, using the exact interval-fairness tracker.
func TestTheorem3_FairnessBound(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		e := core.New()
		const n = 6
		d := harness.New(n, e)
		ft := metrics.NewFairnessTracker(n)
		d.OnServe = func(p flit.Packet, cost int64) { ft.Serve(p.Flow, int64(p.Length)) }
		src := rng.New(seed * 1000)
		dists := []rng.LengthDist{
			rng.NewUniform(1, 64),
			rng.NewUniform(1, 128),
			rng.NewTruncExp(0.2, 1, 64),
			rng.Bimodal{Short: 1, Long: 100, PShort: 0.8},
			rng.NewUniform(40, 60),
			rng.Constant{Length: 13},
		}
		m := 0
		for i := 0; i < 1500; i++ {
			for f := 0; f < n; f++ {
				l := dists[f].Draw(src)
				if l > m {
					m = l
				}
				d.Arrive(pkt(f, l))
			}
		}
		// FM is defined over flows active during the interval, so stop
		// measuring the moment any queue drains.
		serveWhileBacklogged(d, n)
		if fm := ft.FM(); fm >= int64(3*m) {
			t.Errorf("seed %d: FM = %d >= 3m = %d", seed, fm, 3*m)
		}
	}
}

// TestERRFairWithHeterogeneousLengths mirrors Figure 4: one flow with
// double-length packets gets no extra throughput.
func TestERRFairWithHeterogeneousLengths(t *testing.T) {
	d := harness.New(2, core.New())
	src := rng.New(3)
	l64 := rng.NewUniform(1, 64)
	l128 := rng.NewUniform(1, 128)
	for i := 0; i < 3000; i++ {
		d.Arrive(pkt(0, l64.Draw(src)))
		d.Arrive(pkt(1, l128.Draw(src)))
	}
	serveWhileBacklogged(d, 2)
	r := float64(d.Served(1)) / float64(d.Served(0))
	if r < 0.98 || r > 1.02 {
		t.Errorf("ERR throughput ratio %.3f, want ~1.0", r)
	}
}

// TestERRNotLengthAware asserts the compile-level property the paper
// hinges on: ERR must not implement the length side-channel.
func TestERRNotLengthAware(t *testing.T) {
	var s sched.Scheduler = core.New()
	if _, ok := s.(sched.LengthAware); ok {
		t.Fatal("ERR must not implement sched.LengthAware")
	}
}

// TestERROccupancyCosts runs ERR in wormhole occupancy mode: each
// packet's billed cost exceeds its length by a flow-dependent stall.
// Fairness in occupancy units must stay bounded by 3 * maxCost even
// though lengths alone would be skewed.
func TestERROccupancyCosts(t *testing.T) {
	e := core.New()
	const n = 3
	d := harness.New(n, e)
	occ := metrics.NewFairnessTracker(n)
	maxCost := int64(0)
	d.CostFn = func(p flit.Packet) int64 {
		// Flow 2 suffers heavy downstream congestion: 3x occupancy.
		c := int64(p.Length)
		if p.Flow == 2 {
			c *= 3
		}
		return c
	}
	d.OnServe = func(p flit.Packet, cost int64) {
		occ.Serve(p.Flow, cost)
		if cost > maxCost {
			maxCost = cost
		}
	}
	src := rng.New(5)
	dist := rng.NewUniform(1, 32)
	for i := 0; i < 3000; i++ {
		for f := 0; f < n; f++ {
			d.Arrive(pkt(f, dist.Draw(src)))
		}
	}
	serveWhileBacklogged(d, n)
	if fm := occ.FM(); fm >= 3*maxCost {
		t.Errorf("occupancy FM = %d >= 3*maxCost = %d", fm, 3*maxCost)
	}
	// And flow 2 must have been *throttled* in flits: it pays for its
	// congestion, roughly 3x fewer flits.
	r := float64(d.Served(0)) / float64(d.Served(2))
	if r < 2.5 || r > 3.5 {
		t.Errorf("congested flow flit ratio %.2f, want ~3", r)
	}
}

func TestWeightedERRProportionalShares(t *testing.T) {
	weights := []int64{1, 2, 4}
	e := core.NewWeighted(func(f int) int64 { return weights[f] })
	d := harness.New(3, e)
	src := rng.New(8)
	dist := rng.NewUniform(1, 32)
	// The weight-4 flow is served 4x as fast, so give it 4x the
	// packets to keep every flow backlogged for the whole measurement.
	for i := 0; i < 4000; i++ {
		for f := 0; f < 3; f++ {
			for k := int64(0); k < weights[f]; k++ {
				d.Arrive(pkt(f, dist.Draw(src)))
			}
		}
	}
	serveWhileBacklogged(d, 3)
	s0 := float64(d.Served(0))
	if r := float64(d.Served(1)) / s0; r < 1.95 || r > 2.05 {
		t.Errorf("weight-2 flow ratio %.3f, want ~2", r)
	}
	if r := float64(d.Served(2)) / s0; r < 3.9 || r > 4.1 {
		t.Errorf("weight-4 flow ratio %.3f, want ~4", r)
	}
}

func TestWeightedERRUnitWeightsMatchUnweighted(t *testing.T) {
	a := harness.New(3, core.New())
	b := harness.New(3, core.NewWeighted(func(int) int64 { return 1 }))
	src := rng.New(123)
	dist := rng.NewUniform(1, 20)
	type arrival struct{ f, l int }
	var arrivals []arrival
	for i := 0; i < 600; i++ {
		arrivals = append(arrivals, arrival{src.Intn(3), dist.Draw(src)})
	}
	for _, ar := range arrivals {
		a.Arrive(pkt(ar.f, ar.l))
		b.Arrive(pkt(ar.f, ar.l))
	}
	pa := a.Drain()
	pb := b.Drain()
	for i := range pa {
		if pa[i].Flow != pb[i].Flow || pa[i].Length != pb[i].Length {
			t.Fatalf("weighted(1) diverged from unweighted at packet %d", i)
		}
	}
}

// TestIdleReset: after the system drains completely, a fresh arrival
// starts from clean round state (allowance 1 + 0 - 0).
func TestIdleReset(t *testing.T) {
	e := core.New()
	rec := &core.TraceRecorder{}
	e.SetTrace(rec)
	d := harness.New(2, e)
	d.Arrive(pkt(0, 50)) // builds a large MaxSC
	d.Arrive(pkt(1, 2))
	d.Drain()
	if e.Round() != 0 {
		t.Errorf("Round = %d after idle, want 0", e.Round())
	}
	d.Arrive(pkt(1, 5))
	d.ServeOne()
	last := rec.Events[len(rec.Events)-1]
	if last.Allowance != 1 {
		t.Errorf("first allowance after idle = %d, want 1", last.Allowance)
	}
}

// TestERRArrivalDuringService: a packet arriving for the flow in
// service must not double-insert the flow into the active list.
func TestERRArrivalDuringService(t *testing.T) {
	e := core.New()
	d := harness.New(2, e)
	d.Arrive(pkt(0, 3))
	d.Arrive(pkt(1, 3))
	// Serve flow 0 while "concurrently" adding more of its packets.
	// The harness is synchronous, so emulate by arriving right before
	// each ServeOne; the invariant is that Drain terminates and every
	// packet is served exactly once.
	d.Arrive(pkt(0, 2))
	served := d.Drain()
	if len(served) != 3 {
		t.Fatalf("served %d packets, want 3", len(served))
	}
	if e.ActiveFlows() != 0 || e.CurrentFlow() != -1 {
		t.Error("scheduler state not idle after drain")
	}
}

// TestERRStarvationFreedom: even a flow with pathological surplus
// keeps receiving at least one packet per round (the "+1" in the
// allowance).
func TestERRStarvationFreedom(t *testing.T) {
	e := core.New()
	rec := &core.TraceRecorder{}
	e.SetTrace(rec)
	d := harness.New(2, e)
	// Flow 0 sends maximal packets, flow 1 minimal ones.
	for i := 0; i < 200; i++ {
		d.Arrive(pkt(0, 100))
		d.Arrive(pkt(1, 1))
	}
	d.ServeN(250)
	// Count flow 0 opportunities: it must appear in every round.
	rounds := map[int64]bool{}
	flow0 := map[int64]bool{}
	for _, ev := range rec.Events {
		rounds[ev.Round] = true
		if ev.Flow == 0 {
			flow0[ev.Round] = true
		}
	}
	// The last round may be in progress; ignore it.
	for r := range rounds {
		if r == e.Round() {
			continue
		}
		if !flow0[r] {
			t.Fatalf("flow 0 starved in round %d", r)
		}
	}
}

// TestAblationAllowancePlusOne demonstrates why the "+1" exists: with
// A = MaxSC - SC, the flow with the maximum surplus would receive a
// zero allowance. ERR's invariant A >= 1 must hold in every recorded
// opportunity.
func TestAblationAllowancePlusOne(t *testing.T) {
	e := core.New()
	rec := &core.TraceRecorder{}
	e.SetTrace(rec)
	d := harness.New(3, e)
	src := rng.New(55)
	dist := rng.NewUniform(1, 50)
	for i := 0; i < 500; i++ {
		for f := 0; f < 3; f++ {
			d.Arrive(pkt(f, dist.Draw(src)))
		}
	}
	d.Drain()
	for _, ev := range rec.Events {
		if ev.Allowance < 1 {
			t.Fatalf("allowance %d < 1 for flow %d in round %d", ev.Allowance, ev.Flow, ev.Round)
		}
	}
}

func TestTraceTableRendering(t *testing.T) {
	e := core.New()
	rec := &core.TraceRecorder{}
	e.SetTrace(rec)
	d := harness.New(2, e)
	d.Arrive(pkt(0, 4))
	d.Arrive(pkt(1, 2))
	d.Drain()
	var sb strings.Builder
	if err := trace.WriteRecorderTable(&sb, rec); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Round 1", "flow 0", "flow 1", "MaxSC=3", "[drained]"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace table missing %q:\n%s", want, out)
		}
	}
}

func TestERRPanicsOnBadUse(t *testing.T) {
	e := core.New()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("OnPacketDone without service did not panic")
			}
		}()
		e.OnPacketDone(0, 5, false)
	}()

	e2 := core.NewWeighted(func(int) int64 { return 0 })
	e2.OnArrival(0, true)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("weight < 1 did not panic")
			}
		}()
		e2.NextFlow()
	}()
}

// Property-style check across many seeds: ERR never selects an empty
// flow and serves every packet exactly once under random interleaved
// arrivals.
func TestERRWorkConservation(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		d := harness.New(5, core.New())
		src := rng.New(seed)
		dist := rng.NewUniform(1, 40)
		arrived, served := 0, 0
		for step := 0; step < 3000; step++ {
			if src.Bernoulli(0.55) || d.Backlog() == 0 {
				d.Arrive(pkt(src.Intn(5), dist.Draw(src)))
				arrived++
			} else {
				d.ServeOne()
				served++
			}
		}
		served += len(d.Drain())
		if served != arrived {
			t.Fatalf("seed %d: arrived %d != served %d", seed, arrived, served)
		}
	}
}
