package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"serve.enqueued": "serve_enqueued",
		"already_fine":   "already_fine",
		"with:colon":     "with:colon",
		"bad-dash/slash": "bad_dash_slash",
		"9starts.digit":  "_9starts_digit",
		"спам":           "____",
		"mix.9.dots":     "mix_9_dots",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWriteTextGolden pins the exposition format for one of each
// metric type.
func TestWriteTextGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.enqueued").Add(3)
	reg.Gauge("serve.tier").Set(1)
	v := reg.Vec("hops.per_dim", 2)
	v.Add(0, 5)
	v.Add(1, 7)
	h := reg.Histogram("wait.ms", HistogramOpts{Width: 1, Buckets: 8})
	h.Observe(2)
	h.Observe(4)

	var b strings.Builder
	if err := WriteText(&b, reg); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE serve_enqueued counter
serve_enqueued 3
# TYPE serve_tier gauge
serve_tier 1
# TYPE hops_per_dim gauge
hops_per_dim{cell="0"} 5
hops_per_dim{cell="1"} 7
# TYPE wait_ms summary
wait_ms{quantile="0.5"} 4
wait_ms{quantile="0.95"} 4
wait_ms{quantile="0.99"} 4
wait_ms{quantile="0.999"} 4
wait_ms_sum 6
wait_ms_count 2
wait_ms_max 4
`
	if b.String() != want {
		t.Fatalf("WriteText output:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestWriteTextScrapeStability: two scrapes of an idle registry are
// byte-identical (map iteration order must not leak into the output).
func TestWriteTextScrapeStability(t *testing.T) {
	reg := NewRegistry()
	for _, n := range []string{"z.last", "a.first", "m.middle", "b.second", "y.tail"} {
		reg.Counter(n).Inc()
		reg.Gauge(n + ".g").Set(2)
	}
	scrape := func() string {
		var b strings.Builder
		if err := WriteText(&b, reg); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := scrape()
	for i := 0; i < 10; i++ {
		if s := scrape(); s != first {
			t.Fatalf("scrape %d differs:\n%s\nvs\n%s", i, s, first)
		}
	}
	// Sorted order: a.first before b.second before m.middle ...
	if !strings.Contains(first, "a_first") || strings.Index(first, "a_first") > strings.Index(first, "z_last") {
		t.Fatalf("output not sorted:\n%s", first)
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Add(42)
	rec := httptest.NewRecorder()
	MetricsHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits 42") {
		t.Fatalf("body missing counter:\n%s", rec.Body.String())
	}
	// nil registry serves the default one without panicking.
	rec = httptest.NewRecorder()
	MetricsHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("default-registry scrape status %d", rec.Code)
	}
}

// TestSnapshotUnderConcurrentWrites hammers a registry from writer
// goroutines while snapshotting concurrently, pinning the documented
// consistency contract: every snapshot is internally sane (counters
// monotone across snapshots, histogram count within the writers'
// progress bounds) even though it is not a single atomic cut. Run
// with -race, this is also the data-race proof for the registry.
func TestSnapshotUnderConcurrentWrites(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops")
	g := reg.Gauge("level")
	v := reg.Vec("cells", 4)
	h := reg.Histogram("lat", HistogramOpts{Width: 1, Buckets: 64})

	const writers = 4
	const perWriter = 5000
	var progress atomic.Int64 // observations completed, all writers
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(int64(i))
				v.Add(i%4, 1)
				h.Observe(int64(i % 60))
				progress.Add(1)
			}
		}(wi)
	}

	var snaps int
	var lastOps int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			// Snapshot first, stop-check after: even if the writers
			// finish before this goroutine is first scheduled, at
			// least one snapshot (then exact) is taken and checked.
			before := progress.Load()
			s := reg.Snapshot()
			after := progress.Load()
			snaps++

			ops := s.Counters["ops"]
			if ops < lastOps {
				t.Errorf("counter went backwards across snapshots: %d -> %d", lastOps, ops)
				return
			}
			lastOps = ops
			// The histogram count must lie within the writers' progress
			// bounds read around the snapshot: at least what was surely
			// done before, at most what could have been done after.
			hs := s.Histograms["lat"]
			if hs.Count < before || hs.Count > after+writers {
				t.Errorf("histogram count %d outside progress window [%d, %d]", hs.Count, before, after+writers)
				return
			}
			if hs.Sum < 0 || hs.Max > 59 {
				t.Errorf("histogram snapshot implausible: %+v", hs)
				return
			}
			var vecSum int64
			for _, cell := range s.Vecs["cells"] {
				vecSum += cell
			}
			if vecSum > after+writers {
				t.Errorf("vec sum %d beyond progress %d", vecSum, after)
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	wg.Wait()
	close(stop)
	<-done
	if snaps == 0 {
		t.Fatal("snapshotter never ran")
	}

	// Quiesced: the final snapshot must be exact.
	s := reg.Snapshot()
	if s.Counters["ops"] != writers*perWriter {
		t.Fatalf("final ops %d, want %d", s.Counters["ops"], writers*perWriter)
	}
	if s.Histograms["lat"].Count != writers*perWriter {
		t.Fatalf("final histogram count %d, want %d", s.Histograms["lat"].Count, writers*perWriter)
	}
	var vecSum int64
	for _, cell := range s.Vecs["cells"] {
		vecSum += cell
	}
	if vecSum != writers*perWriter {
		t.Fatalf("final vec sum %d, want %d", vecSum, writers*perWriter)
	}
}
