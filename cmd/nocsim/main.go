// Command nocsim runs a k x k wormhole mesh network-on-chip with a
// selectable per-output arbitration discipline and synthetic traffic,
// reporting end-to-end latency and per-source throughput fairness —
// the paper's scheduler operating inside the network it was designed
// for.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		k       = flag.Int("k", 4, "mesh radix (k x k nodes)")
		vcs     = flag.Int("vcs", 2, "virtual channels per port")
		buf     = flag.Int("buf", 8, "input VC buffer depth in flits")
		arb     = flag.String("arb", "err", "output arbitration: err, werr, pbrr")
		pattern = flag.String("pattern", "uniform", "traffic: uniform, hotspot, transpose")
		rate    = flag.Float64("rate", 0.02, "per-node injection rate (packets/cycle)")
		minLen  = flag.Int("minlen", 1, "minimum packet length (flits)")
		maxLen  = flag.Int("maxlen", 16, "maximum packet length (flits)")
		cycles  = flag.Int64("cycles", 100_000, "warm simulation cycles before draining")
		seed    = flag.Uint64("seed", 1, "random seed")
		torus   = flag.Bool("torus", false, "wraparound links with dateline VC switching")
		tile    = flag.Int("tile", 0, "commit tile edge in routers (0 = K-derived default); part of the simulated configuration — artifacts depend on it, never on -parallel-mesh")
		pprofA  = flag.String("pprof", "", "serve net/http/pprof and the obs registry expvar on this address (e.g. localhost:6060)")
		faults  = flag.String("faults", "", "fault-injection spec, e.g. \"freeze(router=5,at=1000,dur=500);drop(router=0,port=1,p=0.01)\" (\"\" = fault-free; see internal/fault)")
		checkF  = flag.Bool("check", false, "validate ejected flit streams and run a deadlock watchdog that dumps the channel-wait graph on a stall")
		fseed   = flag.Uint64("faultseed", 0, "fault-randomness seed, independent of -seed (0 = derive from -seed)")
		par     = flag.Int("parallel-mesh", 1, "shard mesh stepping across this many workers (1 = serial, 0 = GOMAXPROCS); output is identical at any setting")
		fscan   = flag.Bool("fullscan", false, "arbitrate with full ports-x-VCs scans instead of the event-driven work-lists (oracle mode; output is identical either way)")
		stepF   = flag.Bool("stepped", false, "step every cycle literally instead of advancing event-to-event (oracle mode; deliveries and latency are identical, but telemetry counting performed work — routers active, sites visited, cycles skipped — reflects the costlier run)")
		traceF  = flag.Bool("trace", false, "attach the packet flight recorder and print per-flow latency tails, hop-time decomposition, and Jain fairness epochs")
		traceS  = flag.Int("trace-sample", 64, "trace one in this many packets (1 = every packet); sampling is seed-derived per packet id, so trace output is byte-identical across stepping modes")
		traceC  = flag.String("trace-out", "", "write sampled-packet spans as Chrome trace-event JSON (Perfetto-loadable) to this file (implies -trace)")
		traceJ  = flag.String("trace-jsonl", "", "write sampled-packet spans as JSONL to this file (implies -trace)")
	)
	flag.Parse()
	if *pprofA != "" {
		addr, err := obs.ServeDebug(*pprofA, obs.Default())
		if err != nil {
			fmt.Fprintf(os.Stderr, "nocsim: pprof: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "nocsim: pprof on http://%s/debug/pprof/ (registry at /debug/vars)\n", addr)
	}
	topts := traceOpts{enabled: *traceF || *traceC != "" || *traceJ != "",
		sample: *traceS, chrome: *traceC, jsonl: *traceJ}
	if err := run(*k, *vcs, *buf, *tile, *arb, *pattern, *rate, *minLen, *maxLen, *cycles, *seed, *torus, *faults, *fseed, *checkF, *par, *fscan, *stepF, topts); err != nil {
		fmt.Fprintf(os.Stderr, "nocsim: %v\n", err)
		os.Exit(1)
	}
}

// traceOpts bundles the flight-recorder flags.
type traceOpts struct {
	enabled bool
	sample  int
	chrome  string
	jsonl   string
}

func run(k, vcs, buf, tile int, arb, pattern string, rate float64, minLen, maxLen int, cycles int64, seed uint64, torus bool, faults string, faultSeed uint64, checkF bool, parallel int, fullScan, stepped bool, topts traceOpts) error {
	var newArb func() sched.Scheduler
	switch arb {
	case "err":
		newArb = func() sched.Scheduler { return core.New() }
	case "werr":
		// Local traffic gets double weight: an example of weighted ERR
		// prioritising injection over through-traffic.
		newArb = func() sched.Scheduler {
			return core.NewWeighted(func(flow int) int64 {
				if flow/vcs == noc.PortLocal {
					return 2
				}
				return 1
			})
		}
	case "pbrr":
		newArb = func() sched.Scheduler { return sched.NewPBRR() }
	default:
		return fmt.Errorf("unknown arbiter %q", arb)
	}

	m, err := noc.NewMesh(noc.Config{K: k, VCs: vcs, BufFlits: buf, NewArb: newArb, Torus: torus, Tile: tile})
	if err != nil {
		return err
	}
	m.RegisterObs(obs.Default())
	m.SetFullScan(fullScan)
	m.SetStepped(stepped)
	if parallel != 1 {
		pool := exec.NewPool(parallel)
		defer pool.Close()
		m.SetPool(pool)
	}

	spec, err := fault.Parse(faults)
	if err != nil {
		return err
	}
	if faultSeed == 0 {
		faultSeed = rng.Derive(seed, 0xfa0175)
	}
	finj := fault.New(spec, faultSeed)
	m.InstallFaults(finj)
	var rec *check.Recorder
	var wd *check.Watchdog
	if checkF {
		rec = check.NewRecorder()
		rec.Register(obs.Default())
		m.CheckStreams(rec)
		// Budget: longest fault window plus slack, so a transient
		// freeze is ridden out but a true deadlock is flagged.
		limit := int64(1 << 16)
		if spec != nil {
			for _, d := range spec.Directives {
				if 4*d.Dur > limit {
					limit = 4 * d.Dur
				}
			}
		}
		wd = check.NewWatchdog(limit)
		m.WatchProgress(wd)
	}
	// wedgeReport renders the abort diagnostic for a mesh holding flits
	// that has delivered nothing for the watchdog budget: the
	// channel-wait graph (who is blocked on which VC, and why) at the
	// trip cycle.
	wedgeReport := func(c int64) error {
		return fmt.Errorf("wedged at cycle %d: %d flits in flight, no delivery for %d cycles (%d flits dropped by fault injection)\nchannel-wait graph:\n%s",
			c, m.InFlight(), wd.Limit, finj.Counters().Dropped,
			noc.FormatWaitGraph(m.WaitGraph(c), 32))
	}
	// The warm loop steps manually (the injector is cycle-driven), so
	// it polls the watchdog itself; the drain runs through Mesh.Drain,
	// which consults the watchdog every stepped cycle and at the trip
	// point of any skipped gap, reporting through the OnWedged hook.
	wedged := func() error {
		if wd == nil || !wd.Expired(m.Cycle(), int64(m.InFlight())) {
			return nil
		}
		return wedgeReport(m.Cycle())
	}
	var wedgeErr error
	if wd != nil {
		m.SetOnWedged(func(c int64) { wedgeErr = wedgeReport(c) })
	}

	var tr *trace.Trace
	if topts.enabled {
		tr = m.EnableTrace(noc.TraceConfig{
			Seed:        rng.Derive(seed, 0x7ace),
			SampleEvery: topts.sample,
			Reg:         obs.Default(),
		})
	}

	var pat noc.Pattern
	switch pattern {
	case "uniform":
		pat = noc.Uniform{Nodes: m.Nodes()}
	case "hotspot":
		pat = noc.Hotspot{Nodes: m.Nodes(), Node: m.NodeID(k/2, k/2), Frac: 0.3}
	case "transpose":
		pat = noc.Transpose{K: k}
	default:
		return fmt.Errorf("unknown pattern %q", pattern)
	}

	src := rng.New(seed)
	inj := noc.NewInjector(m, rate, pat, rng.NewUniform(minLen, maxLen), src)
	inj.MaxPending = 8
	for c := int64(0); c < cycles; c++ {
		inj.Step()
		m.Step()
		if err := wedged(); err != nil {
			return err
		}
	}
	drained := m.Drain(10 * cycles)
	if wedgeErr != nil {
		return wedgeErr
	}

	var injected, delivered int64
	flits := make([]float64, m.Nodes())
	labels := make([]string, m.Nodes())
	for n := 0; n < m.Nodes(); n++ {
		injected += inj.Injected[n]
		delivered += m.DeliveredPackets[n]
		flits[n] = float64(m.DeliveredFlits[n])
		x, y := m.Coords(n)
		labels[n] = fmt.Sprintf("(%d,%d)", x, y)
	}

	topo := "mesh"
	if torus {
		topo = "torus"
	}
	fmt.Printf("%s %dx%d, %d VCs, buf %d flits, arb=%s, pattern=%s, rate=%.3f\n",
		topo, k, k, vcs, buf, arb, pattern, rate)
	fmt.Printf("cycles: %d (+drain), injected: %d packets, delivered: %d, drained: %v\n",
		cycles, injected, delivered, drained)
	fmt.Printf("latency: mean %.1f cycles, min %.0f, max %.0f (n=%d)\n",
		m.Latency.Mean(), m.Latency.Min(), m.Latency.Max(), m.Latency.N())
	spread := stats.MaxAbsDiff(flits)
	fmt.Printf("per-source delivered flits: spread %.0f\n", spread)
	if cyc := obs.Default().Counter("noc.cycles").Value(); cyc > 0 {
		comp := obs.Default().Counter("noc.router_computes").Value()
		fmt.Printf("stepping: avg %.1f of %d routers active per cycle (high water %d)\n",
			float64(comp)/float64(cyc), m.Nodes(),
			obs.Default().Gauge("noc.active_routers_high_water").Value())
		mode := "work-list"
		if fullScan {
			mode = "full-scan"
		}
		cells := obs.Default().Counter("noc.cells_visited").Value()
		fmt.Printf("arbitration: %s, %.1f arbitration sites visited/cycle (mesh holds %d ports*VCs cells); %d idle cycles skipped\n",
			mode, float64(cells)/float64(cyc), m.Nodes()*noc.RouterPorts*vcs,
			obs.Default().Counter("noc.cycles_skipped").Value())
		crossShare := 0.0
		if comp > 0 {
			crossShare = float64(m.CrossShardEffects()) / float64(comp)
		}
		fmt.Printf("layout: %d B/router arena, %dx%d commit tiles (%d tiles), %.1f%% of router computes emitted cross-tile effects\n",
			m.BytesPerRouter(), m.TileEdge(), m.TileEdge(), m.Tiles(), 100*crossShare)
	}
	if fc := finj.Counters(); fc != (fault.Counters{}) {
		fmt.Printf("faults: %d stall cycles, %d dropped flits, %d corrupted flits\n",
			fc.StallCycles, fc.Dropped, fc.Corrupted)
	}
	fmt.Println()
	if err := plot.Bar(os.Stdout, "Delivered flits per source node", labels, flits, 50); err != nil {
		return err
	}
	if tr != nil {
		tr.Finish(m.Cycle())
		recs := tr.Records()
		ws := trace.WindowsFromSpec(spec)
		if err := writeTraceFile(topts.chrome, func(w *os.File) error {
			return trace.WriteChrome(w, recs, ws)
		}); err != nil {
			return err
		}
		if err := writeTraceFile(topts.jsonl, func(w *os.File) error {
			return trace.WriteJSONL(w, recs, ws)
		}); err != nil {
			return err
		}
		fmt.Printf("\nflight recorder: %d spans (1-in-%d sampling, %d overwritten)\n",
			len(recs), topts.sample, tr.Dropped())
		if err := tr.Rollup().Render(os.Stdout); err != nil {
			return err
		}
		if rec != nil {
			// Span invariants report into the same recorder as the
			// stream checks, so violations fail the run below.
			trace.Audit(recs, rec.Report)
		}
	}
	if rec != nil {
		if err := rec.Err(); err != nil {
			return fmt.Errorf("invariant checking failed: %w", err)
		}
		fmt.Printf("\ninvariant checking: %d violations\n", rec.Count())
	}
	return nil
}

// writeTraceFile writes one trace export to path ("" = skip).
func writeTraceFile(path string, write func(*os.File) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
