package wormhole

import (
	"repro/internal/damq"
	"repro/internal/flit"
)

// portBuf is the input buffering of one router port: either statically
// partitioned per-VC FIFOs (the default) or a dynamically allocated
// multi-queue shared buffer (DAMQ, Tamir & Frazier) — the paper's
// "a single buffer can implement multiple logical queues". The
// notified flag (head packet announced to its arbiter) lives here so
// both modes share the announcement protocol. occVC mirrors per-VC
// non-emptiness as a bitmask (bit v set <=> VC v holds flits), so the
// forwarding hot loop answers "is this input empty?" with one word
// load instead of a FIFO pointer chase.
type portBuf struct {
	fifos []vcFIFO     // per-VC FIFOs; buf nil in shared mode (arr/notif still used)
	dyn   *damq.Buffer // shared mode
	occVC uint64
}

func initPortBuf(pb *portBuf, a *Arena, vcs, bufFlits, sharedFlits, cap int) {
	pb.fifos = a.fifos.take(vcs)
	if sharedFlits > 0 {
		pb.dyn = damq.New(sharedFlits, vcs, bufFlits)
		if cap > 0 {
			pb.dyn.SetCap(cap)
		}
		return
	}
	for v := range pb.fifos {
		pb.fifos[v].buf = a.entries.take(bufFlits)
	}
}

func (p *portBuf) empty(vc int) bool { return p.occVC&(1<<uint(vc)) == 0 }

func (p *portBuf) len(vc int) int {
	if p.dyn != nil {
		return p.dyn.Len(vc)
	}
	return p.fifos[vc].len()
}

func (p *portBuf) canAccept(vc int) bool {
	if p.dyn != nil {
		return p.dyn.CanAccept(vc)
	}
	return !p.fifos[vc].full()
}

func (p *portBuf) push(vc int, f flit.Flit, arrived int64) {
	q := &p.fifos[vc]
	if p.occVC&(1<<uint(vc)) == 0 {
		q.arr = arrived
	}
	if p.dyn != nil {
		if !p.dyn.Push(vc, f, arrived) {
			panic("wormhole: push to full DAMQ queue (flow control violated)")
		}
	} else {
		// Write the slot in place (vcFIFO.push would copy the entry a
		// second time — measurable on the injection-heavy commit path).
		if q.size == len(q.buf) {
			panic("wormhole: push to full VC FIFO (credit protocol violated)")
		}
		i := q.head + q.size
		if i >= len(q.buf) {
			i -= len(q.buf)
		}
		s := &q.buf[i]
		s.f = f
		s.arrived = arrived
		q.size++
	}
	p.occVC |= 1 << uint(vc)
}

// popFlit dequeues the head flit of VC vc, discarding its arrival
// stamp (the forwarding path already consulted peekArrived).
func (p *portBuf) popFlit(vc int) flit.Flit {
	q := &p.fifos[vc]
	if p.dyn != nil {
		f, _ := p.dyn.Pop(vc)
		if p.dyn.Empty(vc) {
			p.occVC &^= 1 << uint(vc)
		} else {
			_, m := p.dyn.Peek(vc)
			q.arr = m
		}
		return f
	}
	if q.size == 0 {
		panic("wormhole: pop from empty VC FIFO")
	}
	f := q.buf[q.head].f
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.size--
	if q.size == 0 {
		p.occVC &^= 1 << uint(vc)
	} else {
		q.arr = q.buf[q.head].arrived
	}
	return f
}

func (p *portBuf) peek(vc int) entry {
	if p.dyn != nil {
		f, meta := p.dyn.Peek(vc)
		return entry{f: f, arrived: meta}
	}
	return p.fifos[vc].peek()
}

// peekArrived returns the arrival cycle of the head flit (valid only
// while the VC is non-empty — callers gate on occVC). The forwarding
// hot loop consults it for every allocated VC every cycle.
func (p *portBuf) peekArrived(vc int) int64 { return p.fifos[vc].arr }
