// Package exec is a deterministic worker pool for independent
// simulation jobs. Every experiment in this repository is a grid of
// discipline × sweep-point × seed runs that share no mutable state:
// each run builds its own scheduler, its own traffic source, and its
// own rng stream from an explicitly derived seed (rng.Derive). That
// makes the grid embarrassingly parallel — and, because results are
// collected in submission order, Run's output is bit-identical to
// executing the same jobs serially, the guarantee the experiments'
// determinism tests pin.
//
// The pool is intentionally minimal: no cancellation of a job
// mid-flight (a simulation job is CPU-bound and finishes in bounded
// time), and a deterministic error contract so that even failures
// reproduce run to run. WithContext adds the one cancellation point
// that matters operationally — retry backoff sleeps and attempt
// starts — without preempting running jobs.
package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one self-contained unit of work. A Job must own everything
// it touches — scheduler, source, rng stream — so that running it
// concurrently with any other Job cannot race. Jobs that share a
// *rng.Source (or any other mutable state) are a bug in the caller.
type Job[T any] func() (T, error)

// Workers normalizes a worker-count knob: n <= 0 selects
// runtime.GOMAXPROCS(0); any other value is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Progress observes job completions: done jobs out of total have
// finished (successfully or not). On the parallel path it is called
// from worker goroutines, possibly concurrently, so implementations
// must be safe for concurrent use; the done counts it sees are
// monotone per call site but may arrive out of order across
// goroutines. A nil Progress is ignored.
type Progress func(done, total int)

// Option configures a Run call.
type Option func(*options)

type options struct {
	progress Progress
	retries  int
	backoff  time.Duration
	sleep    func(time.Duration)
	timeout  time.Duration
	cp       *Checkpoint
	ctx      context.Context
	shard    int
	of       int
}

// WithProgress reports each job completion to p. It exists for the
// long experiment sweeps: the pool's result order and error contract
// are unaffected, so output stays byte-identical whether or not
// progress is observed.
func WithProgress(p Progress) Option {
	return func(o *options) { o.progress = p }
}

// WithRetry re-runs a failing job up to retries additional times,
// sleeping backoff, 2*backoff, 4*backoff, ... between attempts.
// Simulation jobs are deterministic, so a retry only helps against
// environmental failures (a checkpoint write hitting a full disk, an
// OOM-killed helper); keep retries small. Result order and the
// lowest-failing-index error contract are unchanged: a job that
// exhausts its attempts fails with its final error.
func WithRetry(retries int, backoff time.Duration) Option {
	return func(o *options) {
		if retries < 0 {
			retries = 0
		}
		o.retries = retries
		o.backoff = backoff
	}
}

// WithTimeout fails any single job that runs longer than d with a
// *TimeoutError. The job's goroutine cannot be preempted and keeps
// running detached (its result is discarded) — the point is that a
// wedged job fails the sweep cleanly instead of hanging it forever.
func WithTimeout(d time.Duration) Option {
	return func(o *options) { o.timeout = d }
}

// WithContext makes retry backoff sleeps and attempt starts
// cancellable: when ctx is done, the pending backoff is abandoned
// immediately and the job fails with ctx.Err(). A sweep stuck in a
// long exponential backoff (a dying disk retried with minutes-long
// sleeps) then responds to shutdown promptly instead of sleeping out
// its schedule. Cancellation does not preempt a job attempt already
// running — the same non-preemption rule as WithTimeout — and a
// canceled run keeps the deterministic lowest-failing-index error
// contract, with ctx.Err() as the failing job's error.
func WithContext(ctx context.Context) Option {
	return func(o *options) { o.ctx = ctx }
}

// WithShard(shard, of) restricts a Run to the jobs whose index i
// satisfies i % of == shard, so a giant sweep can be split across
// processes (or machines): each process runs the same grid with the
// same checkpoint signature, its own shard index, and its own
// checkpoint file. Jobs owned by other shards are skipped — their
// results stay zero values — unless the attached checkpoint already
// records them, which still loads. The full deterministic result is
// recovered by MergeCheckpoints-ing the per-shard files and resuming
// one unsharded Run against the merged checkpoint: every job is then
// recorded, nothing re-executes, and the output is byte-identical to
// a serial single-process sweep. Round-robin assignment (not
// contiguous blocks) keeps shard wall-times balanced when job cost
// trends across the grid. of <= 1 disables sharding.
func WithShard(shard, of int) Option {
	if of > 1 && (shard < 0 || shard >= of) {
		panic(fmt.Sprintf("exec: shard %d outside [0, %d)", shard, of))
	}
	return func(o *options) {
		o.shard = shard
		o.of = of
	}
}

// WithCheckpoint records every completed job's result to cp as one
// JSON line, and skips jobs cp already holds a result for (loaded by
// OpenCheckpoint in resume mode), feeding the recorded result back
// instead of re-running. Because results round-trip through
// encoding/json losslessly (float64 included), a killed sweep resumed
// from its checkpoint produces byte-identical aggregate output. Job
// result types must round-trip JSON (exported fields).
func WithCheckpoint(cp *Checkpoint) Option {
	return func(o *options) { o.cp = cp }
}

// Run executes jobs on up to workers goroutines (Workers(workers) of
// them) and returns the results in submission order, so the output is
// independent of the worker count and of goroutine scheduling.
// workers == 1 runs every job in order on the calling goroutine — the
// legacy serial path.
//
// The error contract is deterministic too: if any jobs fail, Run
// returns the error of the lowest-indexed failing job, and every job
// with a smaller index is guaranteed to have executed. Jobs with
// larger indexes may or may not have run; their results must not be
// used when Run returns an error.
func Run[T any](jobs []Job[T], workers int, opts ...Option) ([]T, error) {
	o := options{sleep: time.Sleep}
	for _, opt := range opts {
		opt(&o)
	}
	workers = Workers(workers)
	results := make([]T, len(jobs))
	if workers == 1 || len(jobs) <= 1 {
		for i, job := range jobs {
			err := oneJob(&o, i, job, &results[i])
			if o.progress != nil {
				o.progress(i+1, len(jobs))
			}
			if err != nil {
				return results, fmt.Errorf("exec: job %d: %w", i, err)
			}
		}
		return results, nil
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	errs := make([]error, len(jobs))
	var next, done atomic.Int64
	// minFailed is the lowest failing index observed so far; workers
	// stop claiming jobs beyond it (jobs below it must still run so
	// the reported error matches serial execution).
	var minFailed atomic.Int64
	minFailed.Store(int64(len(jobs)))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(jobs) || int64(i) > minFailed.Load() {
					return
				}
				err := oneJob(&o, i, jobs[i], &results[i])
				if o.progress != nil {
					o.progress(int(done.Add(1)), len(jobs))
				}
				if err != nil {
					errs[i] = err
					for {
						cur := minFailed.Load()
						if int64(i) >= cur || minFailed.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					continue
				}
			}
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("exec: job %d: %w", i, err)
		}
	}
	return results, nil
}

// oneJob resolves job i into *dst: from the checkpoint when a result
// is already recorded, else by running the job (with recovery, retry
// and timeout per the options) and recording the result.
func oneJob[T any](o *options, i int, job Job[T], dst *T) error {
	if o.cp != nil && o.cp.load(i, dst) {
		return nil
	}
	if o.of > 1 && i%o.of != o.shard {
		// Another process's shard (and not checkpointed): leave the
		// zero value. See WithShard.
		return nil
	}
	r, err := runJob(o, i, job)
	if err != nil {
		return err
	}
	if o.cp != nil {
		// A checkpoint that cannot record is a failure: resuming from
		// it would silently re-run (and possibly re-randomize) work
		// the caller believes is saved.
		if err := o.cp.record(i, r); err != nil {
			return err
		}
	}
	*dst = r
	return nil
}
