package engine

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/traffic"
)

// TestFullSystemTraceVerifies is the cross-module integration check:
// a paper-style workload (skewed rates and lengths, oversubscribed)
// driven through the engine with a traced ERR, then audited by the
// analysis verifier against Lemma 1 and Theorem 2, with the measured
// fairness checked against Theorem 3's 3m bound over the backlogged
// second half of the run.
func TestFullSystemTraceVerifies(t *testing.T) {
	const flows = 8
	const cycles = 400_000
	e := core.New()
	rec := &core.TraceRecorder{}
	e.SetTrace(rec)

	src := rng.New(2027)
	sources := make([]traffic.Source, flows)
	// Rates chosen so every flow oversubscribes its fair share, as in
	// Figure 4.
	r := 1.5 / 324.5
	for f := 0; f < flows; f++ {
		rate := r
		dist := rng.LengthDist(rng.NewUniform(1, 64))
		if f == 2 {
			dist = rng.NewUniform(1, 128)
		}
		if f == 3 {
			rate = 2 * r
		}
		sources[f] = traffic.NewBernoulli(f, rate, dist, src.Split())
	}

	ft := metrics.NewFairnessTracker(flows)
	var m int64
	eng, err := NewEngine(Config{
		Flows:     flows,
		Scheduler: e,
		Source:    traffic.NewMulti(sources...),
		OnFlit: func(cycle int64, flow int) {
			if cycle >= cycles/2 {
				ft.Serve(flow, 1)
			}
		},
		OnDeparture: func(p flit.Packet, cycle, occ int64) {
			if int64(p.Length) > m {
				m = int64(p.Length)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(cycles)

	if err := analysis.VerifyTrace(rec, m, 3); err != nil {
		t.Fatalf("trace verification failed: %v", err)
	}
	if fm := ft.FM(); fm >= analysis.ERRFairnessBound(m) {
		t.Errorf("measured FM %d >= 3m = %d", fm, analysis.ERRFairnessBound(m))
	}
	if m < 100 {
		t.Fatalf("workload degenerate: m = %d", m)
	}
}
