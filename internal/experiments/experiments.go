// Package experiments reproduces, one runner per table/figure, the
// evaluation section of "Fair and Efficient Packet Scheduling in
// Wormhole Networks" (Kanhere, Parekh & Sethu, IPDPS 2000):
//
//   - Table 1 — fairness measure and work complexity of the
//     disciplines, with an empirical fairness check per discipline;
//   - Figure 3 — a traced ERR execution (see cmd/errtrace);
//   - Figure 4 (a-d) — per-flow throughput of ERR vs PBRR, FBRR,
//     FCFS, DRR under heterogeneous rates and packet lengths;
//   - Figure 5 (a,b) — average packet delay vs transient congestion
//     intensity, ERR vs FCFS and vs PBRR;
//   - Figure 6 — average relative fairness vs number of flows, ERR
//     vs DRR under exponentially distributed packet lengths;
//
// plus the ablations called out in DESIGN.md. Every runner accepts a
// scaled-down parameter set so the full suite also runs as tests; the
// paper-scale parameters are the documented defaults of cmd/errsim.
package experiments

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/flit"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// SimResult bundles the measurements of one simulation run.
type SimResult struct {
	// Discipline is the scheduler's Name.
	Discipline string
	// Throughput holds per-flow served volume.
	Throughput *metrics.ThroughputTable
	// Delays holds packet delay statistics.
	Delays *metrics.DelayStats
	// Log is the cycle-resolution service log (nil unless requested).
	Log *metrics.ServiceLog
	// Cycles is the number of simulated cycles.
	Cycles int64
	// Faults summarises what the fault injector actually did (zero
	// when no FaultSpec was configured).
	Faults fault.Counters
	// Rejected counts malformed packets refused at injection.
	Rejected int64
}

// SimConfig configures one run of the single-server simulator.
type SimConfig struct {
	Flows     int
	Scheduler sched.Scheduler     // exactly one of Scheduler /
	FlitSched sched.FlitScheduler // FlitSched must be set
	Source    traffic.Source
	Cycles    int64
	// DrainAfter, when true, keeps stepping after Cycles until all
	// queues empty (the Figure 5 protocol).
	DrainAfter bool
	// DrainBudget caps the drain phase (0 = 16x Cycles).
	DrainBudget int64
	// WithLog records a cycle-resolution metrics.ServiceLog
	// (costs one byte per cycle).
	WithLog bool
	// Stall, if set, injects downstream stalls (wormhole occupancy
	// mode).
	Stall engine.StallModel
	// AllowLengthAwareStalls forwards to engine.Config (ablations
	// only).
	AllowLengthAwareStalls bool
	// Collector, if set, is wired onto the engine callbacks and
	// accumulates registry metrics (per-flow service, delay/occupancy
	// histograms, backlog high water) alongside the standard result
	// metrics. Safe to share across concurrent runs: all collector
	// mutations are atomic.
	Collector *obs.Collector `json:"-"`
	// Trace, if set, is the packet flight recorder wired onto the
	// engine callbacks (each run becomes one track of engine spans).
	Trace *trace.EngineTrace `json:"-"`
	// FaultSpec, when non-empty, is a fault directive string (see
	// fault.Parse) injected into this run: link stalls wrap Stall,
	// malformed packets wrap Source. Fault randomness derives from
	// FaultSeed, so a faulted run is exactly repeatable.
	FaultSpec string
	FaultSeed uint64
	// Check enables the runtime invariant checker: Lemma 1 on every
	// ERR service opportunity, flit conservation, per-flow FIFO
	// departure order, ActiveList consistency, and a deadlock/livelock
	// watchdog. Violations fail the run with a *check.ViolationError
	// carrying cycle-stamped event traces. Checked runs step with a
	// per-cycle audit, so they are slower; the default fast path is
	// untouched when Check is false.
	Check bool
	// WatchdogCycles is the checker's no-progress budget (0 = the
	// default, max(1<<16, 4x the longest configured stall window)).
	WatchdogCycles int64
}

// watchdogLimit picks the watchdog budget for a config: generous
// enough that a configured transient fault window cannot trip it.
func (cfg *SimConfig) watchdogLimit(spec *fault.Spec) int64 {
	if cfg.WatchdogCycles > 0 {
		return cfg.WatchdogCycles
	}
	limit := int64(1 << 16)
	if spec != nil {
		for _, d := range spec.Directives {
			if d.Kind == "stall" && d.Dur > 0 && 4*d.Dur > limit {
				limit = 4 * d.Dur
			}
		}
	}
	return limit
}

// RunSim executes one simulation and collects the standard metrics.
func RunSim(cfg SimConfig) (*SimResult, error) {
	res := &SimResult{
		Throughput: metrics.NewThroughputTable(cfg.Flows, flit.DefaultFlitBytes),
		Delays:     metrics.NewDelayStats(cfg.Flows),
	}
	if cfg.Scheduler != nil {
		res.Discipline = cfg.Scheduler.Name()
	} else if cfg.FlitSched != nil {
		res.Discipline = cfg.FlitSched.Name()
	}
	if cfg.WithLog {
		// The hint preallocates for the main run; drain-phase cycles
		// beyond it simply grow the log.
		res.Log = metrics.NewServiceLogCap(cfg.Flows, 0, cfg.Cycles)
	}
	ecfg := engine.Config{
		Flows:                  cfg.Flows,
		Scheduler:              cfg.Scheduler,
		FlitSched:              cfg.FlitSched,
		Source:                 cfg.Source,
		Stall:                  cfg.Stall,
		AllowLengthAwareStalls: cfg.AllowLengthAwareStalls,
		OnFlit: func(cycle int64, flow int) {
			res.Throughput.Serve(flow, 1)
			if res.Log != nil {
				res.Log.Record(flow)
			}
		},
		OnDeparture: func(p flit.Packet, cycle, occ int64) {
			res.Delays.Departure(p, cycle)
		},
	}
	if res.Log != nil {
		ecfg.OnIdle = func(cycle int64) { res.Log.Record(metrics.Idle) }
		// Without this, a stall model plus WithLog would fall back to
		// OnIdle and occupancy-without-service cycles would be logged
		// as idle time, undercounting utilization derived from the log.
		ecfg.OnStall = func(cycle int64, flow int) { res.Log.Record(metrics.Stalled) }
	}
	if cfg.Collector != nil {
		cfg.Collector.Wire(&ecfg)
	}
	if cfg.Trace != nil {
		cfg.Trace.Wire(&ecfg.OnInject, &ecfg.OnDeparture)
	}

	spec, err := fault.Parse(cfg.FaultSpec)
	if err != nil {
		return nil, err
	}
	inj := fault.New(spec, cfg.FaultSeed)
	wrapped := inj.WrapStall(ecfg.Stall)
	if wrapped != nil && ecfg.Stall == nil {
		// An injected stall is a deliberate failure, not an occupancy
		// accounting mode: measuring how a length-budgeting
		// discipline degrades under it is the point, so the
		// length-aware guard does not apply.
		ecfg.AllowLengthAwareStalls = true
	}
	ecfg.Stall = wrapped
	ecfg.Source = inj.WrapSource(ecfg.Source, cfg.Flows)

	var chk *check.EngineChecker
	if cfg.Check {
		chk = check.NewEngineChecker(cfg.Flows)
		chk.Recorder.Register(obs.Default())
		chk.Watchdog = check.NewWatchdog(cfg.watchdogLimit(spec))
		chk.Wire(&ecfg)
		if errs, ok := cfg.Scheduler.(*core.ERR); ok {
			errs.SetTrace(chk)
		}
	}

	e, err := engine.NewEngine(ecfg)
	if err != nil {
		return nil, err
	}
	if chk != nil {
		chk.Attach(e, cfg.Scheduler)
	}

	// run steps up to n cycles, auditing each one when checking is
	// enabled, and reports whether the watchdog ended the run early.
	run := func(n int64) (stepped int64, wedged bool) {
		if chk == nil {
			e.Run(n)
			return n, false
		}
		for ; stepped < n; stepped++ {
			e.Step()
			chk.Tick()
			if chk.Watchdog.Tripped() {
				return stepped + 1, true
			}
		}
		return stepped, false
	}
	finish := func() {
		res.Faults = inj.Counters()
		res.Rejected = e.Rejected()
		registerFaultCounters(obs.Default(), res.Faults, res.Rejected)
	}

	stepped, wedged := run(cfg.Cycles)
	res.Cycles = stepped
	if wedged {
		finish()
		return nil, fmt.Errorf("experiments: %s wedged: %w", res.Discipline, chk.Err())
	}
	if cfg.DrainAfter {
		budget := cfg.DrainBudget
		if budget == 0 {
			budget = 16 * cfg.Cycles
		}
		if chk == nil {
			extra, drained := e.RunUntilDrained(budget)
			res.Cycles += extra
			if !drained {
				return nil, fmt.Errorf("experiments: %s did not drain within %d cycles",
					res.Discipline, budget)
			}
		} else {
			var extra int64
			for extra = 0; extra < budget && e.Backlog() > 0; extra++ {
				e.Step()
				chk.Tick()
				if chk.Watchdog.Tripped() {
					res.Cycles += extra + 1
					finish()
					return nil, fmt.Errorf("experiments: %s wedged during drain: %w",
						res.Discipline, chk.Err())
				}
			}
			res.Cycles += extra
			if e.Backlog() > 0 {
				return nil, fmt.Errorf("experiments: %s did not drain within %d cycles",
					res.Discipline, budget)
			}
		}
	}
	finish()
	if chk != nil {
		if err := chk.Err(); err != nil {
			return nil, fmt.Errorf("experiments: %s failed invariant checking: %w", res.Discipline, err)
		}
	}
	return res, nil
}

// registerFaultCounters accumulates an injector's tallies (and the
// engine's malformed-packet rejections) into the obs registry, so
// fault activity shows up in run manifests and the debug endpoint
// alongside every other metric.
func registerFaultCounters(reg *obs.Registry, c fault.Counters, rejected int64) {
	if c == (fault.Counters{}) && rejected == 0 {
		return
	}
	reg.Counter("fault.stall_cycles").Add(c.StallCycles)
	reg.Counter("fault.dropped_flits").Add(c.Dropped)
	reg.Counter("fault.corrupted_flits").Add(c.Corrupted)
	reg.Counter("fault.malformed_packets").Add(c.Malformed)
	reg.Counter("fault.rejected_packets").Add(rejected)
}

// Robustness bundles the fault-injection, invariant-checking and
// crash-resilience knobs shared by every grid runner; it is embedded
// in each runner's params struct.
type Robustness struct {
	// Faults is a fault directive string (see fault.Parse) injected
	// into every simulation of the grid ("" = fault-free). Faults
	// change results by design, so they participate in the checkpoint
	// grid signature.
	Faults string
	// Check enables the runtime invariant checker in every simulation
	// (see SimConfig.Check): a violation or a tripped deadlock
	// watchdog fails the job with a structured, cycle-stamped report.
	Check bool
	// Checkpoint is a JSONL checkpoint path enabling crash-resilient
	// grid execution: completed jobs are recorded as they finish, and
	// with Resume set a rerun skips them, producing byte-identical
	// aggregate output ("" = no checkpointing). Excluded from the
	// grid signature: resuming is the point.
	Checkpoint string `json:"-"`
	Resume     bool   `json:"-"`
}

// faultSeed derives the fault-randomness seed of grid job i, kept
// separate from the job's traffic seed so enabling faults never
// perturbs the arrival sequence.
func (r Robustness) faultSeed(base uint64, job int) uint64 {
	return rng.Derive(base, 0xfa0175, uint64(job))
}

// applyRobustness wires the fault injector and (when r.Check is set)
// the invariant checker into a raw engine.Config, for the runners
// that drive the engine directly instead of through RunSim. Call
// before engine.NewEngine; afterwards attach the checker with
// chk.Attach(e, cfg.Scheduler) and step with runChecked.
func applyRobustness(r Robustness, faultSeed uint64, cfg *engine.Config) (*fault.Injector, *check.EngineChecker, error) {
	spec, err := fault.Parse(r.Faults)
	if err != nil {
		return nil, nil, err
	}
	inj := fault.New(spec, faultSeed)
	wrapped := inj.WrapStall(cfg.Stall)
	if wrapped != nil && cfg.Stall == nil {
		// An injected stall is a deliberate failure, not an occupancy
		// accounting mode: measuring how a length-budgeting
		// discipline degrades under it is the point, so the
		// length-aware guard does not apply.
		cfg.AllowLengthAwareStalls = true
	}
	cfg.Stall = wrapped
	cfg.Source = inj.WrapSource(cfg.Source, cfg.Flows)
	var chk *check.EngineChecker
	if r.Check {
		chk = check.NewEngineChecker(cfg.Flows)
		chk.Recorder.Register(obs.Default())
		sc := SimConfig{}
		chk.Watchdog = check.NewWatchdog(sc.watchdogLimit(spec))
		chk.Wire(cfg)
		if errs, ok := cfg.Scheduler.(*core.ERR); ok {
			errs.SetTrace(chk)
		}
	}
	return inj, chk, nil
}

// runChecked steps the engine n cycles, auditing every cycle when a
// checker is attached, and fails with the checker's structured report
// on any violation (including a tripped deadlock watchdog).
func runChecked(e *engine.Engine, chk *check.EngineChecker, n int64) error {
	if chk == nil {
		e.Run(n)
		return nil
	}
	for i := int64(0); i < n; i++ {
		e.Step()
		chk.Tick()
		if chk.Watchdog.Tripped() {
			return chk.Err()
		}
	}
	return chk.Err()
}

// gridOptions assembles the exec options every grid runner shares:
// progress reporting plus, when a checkpoint path is configured,
// crash-resilient checkpoint/resume keyed on the runner's name and
// parameters (so a stale checkpoint from a different grid is
// refused). The returned closer must be called (deferred) when
// checkpointing is active; it is safe to call when nil is returned
// for it.
func gridOptions(name string, params any, checkpoint string, resume bool, progress exec.Progress) ([]exec.Option, func() error, error) {
	var opts []exec.Option
	if progress != nil {
		opts = append(opts, exec.WithProgress(progress))
	}
	closer := func() error { return nil }
	if checkpoint != "" {
		sig, err := exec.Signature(name, params)
		if err != nil {
			return nil, nil, err
		}
		cp, err := exec.OpenCheckpoint(checkpoint, sig, resume)
		if err != nil {
			return nil, nil, err
		}
		opts = append(opts, exec.WithCheckpoint(cp))
		closer = cp.Close
	}
	return opts, closer, nil
}
