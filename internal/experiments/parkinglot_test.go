package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestParkingLotShares(t *testing.T) {
	p := DefaultParkingLotParams()
	p.Cycles = 200_000
	res, err := RunParkingLot(p)
	if err != nil {
		t.Fatal(err)
	}
	// Unweighted ERR: geometric shares, source i gets ~(1/2)^(Hops-i).
	for i := 0; i < p.Hops; i++ {
		want := math.Pow(0.5, float64(p.Hops-i))
		if i == 0 {
			// The farthest source shares the tail with nobody below
			// it, so it gets the same as source 1? No: it is alone on
			// the first link, then halves at each of the Hops-1
			// merges: (1/2)^(Hops-1).
			want = math.Pow(0.5, float64(p.Hops-1))
		}
		if math.Abs(res.ShareERR[i]-want) > 0.03 {
			t.Errorf("ERR source %d share %.4f, want ~%.4f", i, res.ShareERR[i], want)
		}
	}
	// Weighted ERR: near-equal shares. Per-packet grant bubbles in the
	// multi-hop through path let local flows pick up a little slack
	// (work conservation), so allow ~5 points of deviation — still
	// several times tighter than the unweighted geometric spread.
	equal := 1.0 / float64(p.Hops)
	maxDevW, maxDevU := 0.0, 0.0
	for i := range res.ShareWERR {
		if d := math.Abs(res.ShareWERR[i] - equal); d > maxDevW {
			maxDevW = d
		}
		if d := math.Abs(res.ShareERR[i] - equal); d > maxDevU {
			maxDevU = d
		}
	}
	if maxDevW > 0.06 {
		t.Errorf("weighted shares deviate %.4f from equal: %v", maxDevW, res.ShareWERR)
	}
	if maxDevW > maxDevU/2 {
		t.Errorf("weighting did not materially flatten shares: weighted dev %.4f vs unweighted %.4f",
			maxDevW, maxDevU)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Parking lot") {
		t.Error("render missing title")
	}
}

func TestParkingLotValidation(t *testing.T) {
	if _, err := RunParkingLot(ParkingLotParams{Hops: 1, Cycles: 10, PacketLen: 1}); err == nil {
		t.Error("single hop accepted")
	}
}
