package sched_test

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/harness"
	"repro/internal/rng"
	"repro/internal/sched"
)

// Differential test: with equal weights IWRR must be byte-for-byte
// PBRR under arbitrary interleavings of arrivals, service, and idle
// periods — every cycle of a round serves one packet per backlogged
// flow, which is exactly PBRR's visit order.
func TestIWRREqualWeightsIsPBRR(t *testing.T) {
	a := harness.New(4, sched.NewIWRR(nil))
	b := harness.New(4, sched.NewPBRR())
	src := rng.New(42)
	lens := rng.NewUniform(1, 16)
	var id int64
	for step := 0; step < 10_000; step++ {
		if src.Bernoulli(0.5) || a.Backlog() == 0 {
			p := flit.Packet{Flow: src.Intn(4), Length: lens.Draw(src), ID: id}
			id++
			a.Arrive(p)
			b.Arrive(p)
		} else {
			pa, pb := a.ServeOne(), b.ServeOne()
			if pa.ID != pb.ID {
				t.Fatalf("step %d: IWRR served packet %d (flow %d), PBRR packet %d (flow %d)",
					step, pa.ID, pa.Flow, pb.ID, pb.Flow)
			}
		}
	}
	for a.Backlog() > 0 {
		pa, pb := a.ServeOne(), b.ServeOne()
		if pa.ID != pb.ID {
			t.Fatalf("drain: IWRR served packet %d, PBRR packet %d", pa.ID, pb.ID)
		}
	}
}

// The defining IWRR property: a heavy flow's per-round budget is
// spread across the round, not sent back to back. With weights (2,1)
// WRR serves 0,0,1; IWRR serves 0,1,0.
func TestIWRRInterleavesWithinRound(t *testing.T) {
	w := func(flow int) int { return []int{2, 1}[flow] }
	iw := harness.New(2, sched.NewIWRR(w))
	wr := harness.New(2, sched.NewWRR(w))
	for f := 0; f < 2; f++ {
		for i := 0; i < 3; i++ {
			iw.Arrive(pkt(f, 4))
			wr.Arrive(pkt(f, 4))
		}
	}
	iwOrder := []int{}
	wrOrder := []int{}
	for i := 0; i < 3; i++ {
		iwOrder = append(iwOrder, iw.ServeOne().Flow)
		wrOrder = append(wrOrder, wr.ServeOne().Flow)
	}
	if iwOrder[0] != 0 || iwOrder[1] != 1 || iwOrder[2] != 0 {
		t.Errorf("IWRR first round %v, want [0 1 0]", iwOrder)
	}
	if wrOrder[0] != 0 || wrOrder[1] != 0 || wrOrder[2] != 1 {
		t.Errorf("WRR first round %v, want [0 0 1]", wrOrder)
	}
}

// Backlogged flows with constant lengths receive exactly
// weight-proportional packet counts per round.
func TestIWRRWeightedShares(t *testing.T) {
	weights := []int{1, 2, 3, 4}
	d := harness.New(4, sched.NewIWRR(func(f int) int { return weights[f] }))
	for f := 0; f < 4; f++ {
		for i := 0; i < 60; i++ {
			d.Arrive(pkt(f, 8))
		}
	}
	// 5 full rounds of 10 packets each.
	d.ServeN(50)
	for f := 0; f < 4; f++ {
		if want := int64(weights[f]) * 5 * 8; d.Served(f) != want {
			t.Errorf("flow %d served %d flits over 5 rounds, want %d", f, d.Served(f), want)
		}
	}
}

// A flow that goes idle and returns parks until the round boundary —
// it gets no catch-up burst, but is served within the next round.
func TestIWRRReactivation(t *testing.T) {
	w := func(flow int) int { return []int{2, 2}[flow] }
	d := harness.New(2, sched.NewIWRR(w))
	for i := 0; i < 40; i++ {
		d.Arrive(pkt(0, 8))
	}
	d.ServeN(6) // flow 0 alone, mid-round
	d.Arrive(pkt(1, 8))
	// Flow 1 must be served within the next full round: at most its
	// own round's worth of flow-0 packets (weight 2) can precede it.
	served := d.ServeN(4)
	hit := false
	for _, p := range served {
		if p.Flow == 1 {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("reactivated flow not served within the next round: %v", flows(served))
	}
	// Afterwards the budget is per round, not cumulative: with both
	// flows backlogged, flow 1 never gets more than its weight in any
	// window of a round's length.
	for i := 0; i < 40; i++ {
		d.Arrive(pkt(1, 8))
	}
	run := 0
	for i := 0; i < 20; i++ {
		if d.ServeOne().Flow == 1 {
			run++
			if run > 2 {
				t.Fatal("IWRR gave the reactivated flow a catch-up burst")
			}
		} else {
			run = 0
		}
	}
}

func flows(ps []flit.Packet) []int {
	out := make([]int, len(ps))
	for i, p := range ps {
		out[i] = p.Flow
	}
	return out
}

// DRR-OPT is plain DRR with a per-flow quantum table; its name must
// distinguish it in experiment output, and an out-of-table flow must
// fail loudly.
func TestOptDRRNameAndTable(t *testing.T) {
	d := sched.NewOptDRR([]int64{16, 32})
	if d.Name() != "DRR-OPT" {
		t.Errorf("Name() = %q", d.Name())
	}
	if sched.NewDRR(16, nil).Name() != "DRR" {
		t.Errorf("plain DRR name changed")
	}
	h := harness.New(3, d)
	h.Arrive(pkt(2, 4)) // flow 2 has no quantum entry
	defer func() {
		if recover() == nil {
			t.Error("out-of-table flow did not panic")
		}
	}()
	h.ServeOne()
}
