// Command errsim regenerates the tables and figures of "Fair and
// Efficient Packet Scheduling in Wormhole Networks" (Kanhere, Parekh
// & Sethu, IPDPS 2000) from the reproduction library.
//
// Usage:
//
//	errsim -exp table1|fig4a|fig4b|fig4c|fig4d|fig4|fig5a|fig5b|fig5|fig6|occupancy|screset [flags]
//
// Paper-scale parameters are the defaults; -cycles scales the main
// run length down for quick looks. Output is an ASCII rendering of
// the table/figure followed by a CSV block for external plotting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/experiments"
)

// renderer is the common shape of every experiment result.
type renderer interface {
	Render(io.Writer) error
}

// emit writes a result as its ASCII/CSV rendering or, with -json, as
// an indented JSON document of the full result struct.
func emit(w io.Writer, res renderer, asJSON bool) error {
	if !asJSON {
		return res.Render(w)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

func main() {
	var (
		exp       = flag.String("exp", "table1", "experiment: table1, fig4a..d, fig4, fig5a, fig5b, fig5, fig6, fig6ext, occupancy, screset, weighted, gap, nocsweep, nocsweep-torus, parkinglot, lr")
		cycles    = flag.Int64("cycles", 0, "override the experiment's main run length in cycles (0 = paper scale)")
		seed      = flag.Uint64("seed", 1, "random seed")
		intervals = flag.Int("intervals", 0, "fig6: random intervals to average over (0 = paper's 10000)")
		repeats   = flag.Int("repeats", 0, "fig5: seeds to average each point over (0 = default 5)")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for independent simulation jobs (1 = serial; output is identical for any value)")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON instead of ASCII/CSV")
	)
	flag.Parse()
	if err := run(*exp, *cycles, *seed, *intervals, *repeats, *parallel, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "errsim: %v\n", err)
		os.Exit(1)
	}
}

func run(exp string, cycles int64, seed uint64, intervals, repeats, parallel int, asJSON bool) error {
	out := os.Stdout
	switch exp {
	case "table1":
		p := experiments.DefaultTable1Params()
		p.Fig4.Seed = seed
		p.Workers = parallel
		if cycles > 0 {
			p.Fig4.Cycles = cycles
		}
		res, err := experiments.RunTable1(p)
		if err != nil {
			return err
		}
		return emit(out, res, asJSON)

	case "fig4", "fig4a", "fig4b", "fig4c", "fig4d":
		panel := "all"
		if len(exp) == 5 {
			panel = exp[4:]
		}
		p := experiments.DefaultFig4Params()
		p.Seed = seed
		p.Workers = parallel
		if cycles > 0 {
			p.Cycles = cycles
		}
		res, err := experiments.RunFig4(p, panel)
		if err != nil {
			return err
		}
		return emit(out, res, asJSON)

	case "fig5", "fig5a", "fig5b":
		panel := "all"
		if len(exp) == 5 {
			panel = exp[4:]
		}
		p := experiments.DefaultFig5Params()
		p.Seed = seed
		p.Workers = parallel
		if cycles > 0 {
			p.BurstCycles = cycles
		}
		if repeats > 0 {
			p.Repeats = repeats
		}
		res, err := experiments.RunFig5(p, panel)
		if err != nil {
			return err
		}
		return emit(out, res, asJSON)

	case "fig6":
		p := experiments.DefaultFig6Params()
		p.Seed = seed
		p.Workers = parallel
		if cycles > 0 {
			p.Cycles = cycles
		}
		if intervals > 0 {
			p.Intervals = intervals
		}
		res, err := experiments.RunFig6(p)
		if err != nil {
			return err
		}
		return emit(out, res, asJSON)

	case "fig6ext":
		p := experiments.DefaultFig6ExtParams()
		p.Seed = seed
		p.Workers = parallel
		if cycles > 0 {
			p.Cycles = cycles
		}
		if intervals > 0 {
			p.Intervals = intervals
		}
		res, err := experiments.RunFig6Ext(p)
		if err != nil {
			return err
		}
		return emit(out, res, asJSON)

	case "occupancy":
		p := experiments.DefaultAblationOccupancyParams()
		p.Seed = seed
		if cycles > 0 {
			p.Cycles = cycles
		}
		res, err := experiments.RunAblationOccupancy(p)
		if err != nil {
			return err
		}
		return emit(out, res, asJSON)

	case "screset":
		p := experiments.DefaultAblationSurplusResetParams()
		p.Seed = seed
		if cycles > 0 {
			p.Cycles = cycles
		}
		res, err := experiments.RunAblationSurplusReset(p)
		if err != nil {
			return err
		}
		return emit(out, res, asJSON)

	case "weighted":
		p := experiments.DefaultWeightedParams()
		p.Seed = seed
		p.Workers = parallel
		if cycles > 0 {
			p.Cycles = cycles
		}
		res, err := experiments.RunWeighted(p)
		if err != nil {
			return err
		}
		return emit(out, res, asJSON)

	case "gap":
		p := experiments.DefaultGapParams()
		p.Seed = seed
		p.Workers = parallel
		if cycles > 0 {
			p.Cycles = cycles
		}
		res, err := experiments.RunGap(p)
		if err != nil {
			return err
		}
		return emit(out, res, asJSON)

	case "nocsweep", "nocsweep-torus":
		p := experiments.DefaultNoCSweepParams()
		p.Seed = seed
		p.Workers = parallel
		p.Torus = exp == "nocsweep-torus"
		if cycles > 0 {
			p.WarmCycles = cycles
		}
		res, err := experiments.RunNoCSweep(p)
		if err != nil {
			return err
		}
		return emit(out, res, asJSON)

	case "parkinglot":
		p := experiments.DefaultParkingLotParams()
		p.Workers = parallel
		if cycles > 0 {
			p.Cycles = cycles
		}
		res, err := experiments.RunParkingLot(p)
		if err != nil {
			return err
		}
		return emit(out, res, asJSON)

	case "lr":
		p := experiments.DefaultLRParams()
		p.Seed = seed
		if cycles > 0 {
			p.Cycles = cycles
		}
		res, err := experiments.RunLR(p)
		if err != nil {
			return err
		}
		return emit(out, res, asJSON)

	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
