package sched

// SCFQ is Self-Clocked Fair Queuing (Golestani, INFOCOM 1994) — the
// paper the relative fairness measure comes from. Each arriving
// packet k of flow i receives the finish tag
//
//	F_i^k = max(v, F_i^{k-1}) + L_i^k / w_i
//
// where v, the "self clock", is the tag of the packet currently in
// service. Packets are served in increasing tag order via a heap, so
// the work complexity is O(log n). Tags require the packet length at
// arrival, hence LengthAware.
type SCFQ struct {
	weight  func(flow int) float64
	heap    *tagHeap
	tags    map[int]*fifoF64 // queued head-to-tail finish tags per flow
	lastTag map[int]float64  // F_i of the most recent arrival
	v       float64          // tag of packet in (or last in) service
	current int
	pending int // flow whose OnArrival awaits its OnArrivalLength
}

// NewSCFQ returns an SCFQ scheduler; nil weight means equal weights.
func NewSCFQ(weight func(flow int) float64) *SCFQ {
	return &SCFQ{
		weight:  weightFn(weight),
		heap:    newTagHeap(),
		tags:    make(map[int]*fifoF64),
		lastTag: make(map[int]float64),
		current: -1,
		pending: -1,
	}
}

// Name implements Scheduler.
func (s *SCFQ) Name() string { return "SCFQ" }

// OnArrival implements Scheduler. The tag is computed when the
// length arrives in OnArrivalLength.
func (s *SCFQ) OnArrival(flow int, wasEmpty bool) {
	if s.pending != -1 {
		panic("sched: SCFQ OnArrival without OnArrivalLength for previous packet")
	}
	s.pending = flow
}

// OnArrivalLength implements LengthAware.
func (s *SCFQ) OnArrivalLength(flow int, length int) {
	if s.pending != flow {
		panic("sched: SCFQ OnArrivalLength does not match OnArrival")
	}
	s.pending = -1
	last := s.lastTag[flow]
	start := s.v
	if last > start {
		start = last
	}
	tag := start + float64(length)/s.weight(flow)
	s.lastTag[flow] = tag
	q := s.tags[flow]
	if q == nil {
		q = &fifoF64{}
		s.tags[flow] = q
	}
	wasIdle := q.empty() && flow != s.current
	q.push(tag)
	if wasIdle {
		s.heap.push(flow, tag)
	}
}

// NextFlow implements Scheduler.
func (s *SCFQ) NextFlow() int {
	if s.current != -1 {
		panic("sched: SCFQ.NextFlow while a packet is in service")
	}
	flow, tag := s.heap.popMin()
	s.current = flow
	s.v = tag
	return flow
}

// OnPacketDone implements Scheduler.
func (s *SCFQ) OnPacketDone(flow int, cost int64, nowEmpty bool) {
	if flow != s.current {
		panic("sched: SCFQ completion for a flow not in service")
	}
	s.current = -1
	q := s.tags[flow]
	q.pop()
	if !q.empty() {
		s.heap.push(flow, q.peek())
	}
}

var _ LengthAware = (*SCFQ)(nil)
