package check_test

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flit"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/traffic"
)

// buildChecked wires a checker into an engine running sch over src,
// returning both plus the wired config (whose callbacks tests may
// drive directly to simulate accounting bugs).
func buildChecked(t *testing.T, flows int, sch any, src traffic.Source) (*engine.Engine, *check.EngineChecker, *engine.Config) {
	t.Helper()
	ecfg := engine.Config{Flows: flows, Scheduler: sch.(sched.Scheduler), Source: src}
	chk := check.NewEngineChecker(flows)
	chk.Wire(&ecfg)
	if errs, ok := sch.(*core.ERR); ok {
		errs.SetTrace(chk)
	}
	e, err := engine.NewEngine(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	chk.Attach(e, sch)
	return e, chk, &ecfg
}

func backloggedSources(flows int, seed uint64) traffic.Source {
	src := rng.New(seed)
	sources := make([]traffic.Source, flows)
	for f := 0; f < flows; f++ {
		sources[f] = traffic.NewBacklogged(f, 4, rng.NewUniform(1, 32), src.Split())
	}
	return traffic.NewMulti(sources...)
}

// TestEngineCheckerCleanERRRun pins the no-false-positives contract: a
// correct ERR run under mixed packet lengths must report zero
// violations, with the Lemma 1 path demonstrably exercised.
func TestEngineCheckerCleanERRRun(t *testing.T) {
	errs := core.New()
	e, chk, _ := buildChecked(t, 4, errs, backloggedSources(4, 7))
	for c := 0; c < 5000; c++ {
		e.Step()
		chk.Tick()
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("clean ERR run reported violations: %v", err)
	}
	if !chk.Lemma1Checked() {
		t.Fatal("no Opportunity events observed; Lemma 1 was never checked")
	}
}

// TestEngineCheckerCatchesSurplusMutation seeds an invariant-breaking
// mutation — the keep-surplus-on-drain ablation, which skips Figure
// 1's surplus reset for drained flows — and requires the checker to
// catch it with a cycle-stamped trace. A flow that overshoots hugely,
// drains, and reactivates after MaxSC has decayed is granted an
// allowance below 1, violating the paper's per-round guarantee.
func TestEngineCheckerCatchesSurplusMutation(t *testing.T) {
	mutant := core.New()
	mutant.SetKeepSurplusOnDrain(true)
	events := []traffic.TraceEvent{{Cycle: 0, Flow: 0, Length: 32}}
	for c := int64(0); c < 400; c++ {
		events = append(events, traffic.TraceEvent{Cycle: c, Flow: 1, Length: 2})
	}
	events = append(events, traffic.TraceEvent{Cycle: 200, Flow: 0, Length: 32})
	e, chk, _ := buildChecked(t, 2, mutant, traffic.NewReplay(events))
	for c := 0; c < 1000; c++ {
		e.Step()
		chk.Tick()
	}
	err := chk.Err()
	if err == nil {
		t.Fatal("the surplus-keeping mutation went undetected")
	}
	var found *check.Violation
	for _, v := range check.AsViolations(err) {
		if v.Invariant == check.InvAllowance || v.Invariant == check.InvSurplusLower {
			found = v
			break
		}
	}
	if found == nil {
		t.Fatalf("no allowance/Lemma-1 violation among: %v", err)
	}
	if found.Cycle < 0 {
		t.Errorf("violation is not cycle-stamped: %+v", found)
	}
	if len(found.Trace) == 0 {
		t.Error("violation carries no event trace")
	}
}

// lyingERR wraps a correct ERR but misreports ActiveList membership —
// the bookkeeping bug class the err.activelist audit exists for.
type lyingERR struct{ *core.ERR }

func (l lyingERR) IsActive(flow int) bool { return false }

func TestEngineCheckerCatchesActiveListMutation(t *testing.T) {
	liar := lyingERR{core.New()}
	e, chk, _ := buildChecked(t, 2, liar, backloggedSources(2, 3))
	for c := 0; c < 50; c++ {
		e.Step()
		chk.Tick()
	}
	err := chk.Err()
	if err == nil {
		t.Fatal("ActiveList misreporting went undetected")
	}
	vs := check.AsViolations(err)
	if vs[0].Invariant != check.InvActiveList {
		t.Fatalf("first violation = %s, want %s", vs[0].Invariant, check.InvActiveList)
	}
	if vs[0].Cycle < 1 {
		t.Errorf("violation is not cycle-stamped: %+v", vs[0])
	}
}

func TestEngineCheckerCatchesConservationBreak(t *testing.T) {
	errs := core.New()
	e, chk, ecfg := buildChecked(t, 2, errs, backloggedSources(2, 5))
	for c := 0; c < 100; c++ {
		e.Step()
		chk.Tick()
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("violations before the seeded break: %v", err)
	}
	// A phantom injection the engine never sees: the checker's flit
	// ledger no longer closes against backlog + served.
	ecfg.OnInject(flit.Packet{Flow: 0, Length: 3}, e.Cycle())
	e.Step()
	chk.Tick()
	err := chk.Err()
	if err == nil {
		t.Fatal("conservation break went undetected")
	}
	if vs := check.AsViolations(err); vs[0].Invariant != check.InvConservation {
		t.Fatalf("first violation = %s, want %s", vs[0].Invariant, check.InvConservation)
	}
}

// TestEngineCheckerLemma1Bounds drives the trace-sink interface
// directly with out-of-bound values, pinning each Lemma 1 clause.
func TestEngineCheckerLemma1Bounds(t *testing.T) {
	chk := check.NewEngineChecker(2)
	// allowance < 1 and surplus > m-1 (no departures seen, so m-1 = -1).
	chk.Opportunity(1, 0, 0, 5, 5, false)
	// surplus < 0 while still backlogged.
	chk.Opportunity(1, 1, 2, 1, -1, false)
	// surplus < 0 for a drained flow is legal: no violation.
	chk.Opportunity(2, 1, 2, 1, -1, true)
	var got []string
	for _, v := range chk.Violations() {
		got = append(got, v.Invariant)
	}
	want := []string{check.InvAllowance, check.InvSurplusUpper, check.InvSurplusLower}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("violations = %v, want %v", got, want)
	}
}

func TestEngineCheckerWatchdogReportsWedge(t *testing.T) {
	errs := core.New()
	// A source that injects once and a scheduler that then starves: we
	// emulate starvation by simply not stepping the engine — the cycle
	// counter must advance, so instead use a permanently stalled flow
	// via the engine's stall model.
	ecfg := engine.Config{
		Flows:     1,
		Scheduler: errs,
		Source:    traffic.NewReplay([]traffic.TraceEvent{{Cycle: 0, Flow: 0, Length: 4}}),
		Stall:     engine.StallFunc(func(flow int) int { return 1 << 30 }),
	}
	chk := check.NewEngineChecker(1)
	chk.Watchdog = check.NewWatchdog(64)
	chk.Wire(&ecfg)
	e, err := engine.NewEngine(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	chk.Attach(e, errs)
	for c := 0; c < 200 && !chk.Watchdog.Tripped(); c++ {
		e.Step()
		chk.Tick()
	}
	if !chk.Watchdog.Tripped() {
		t.Fatal("watchdog never tripped on a permanently stalled flow")
	}
	verr := chk.Err()
	if verr == nil {
		t.Fatal("tripped watchdog recorded no violation")
	}
	if vs := check.AsViolations(verr); vs[0].Invariant != check.InvWatchdog {
		t.Fatalf("first violation = %s, want %s", vs[0].Invariant, check.InvWatchdog)
	}
}
