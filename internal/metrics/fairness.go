// Package metrics implements the measurement apparatus of the
// paper's Sections 4.2 and 5: the relative fairness measure FM(t1,t2)
// of Golestani (Definition 1), its maximum over all intervals, the
// average over randomly chosen intervals used in Figure 6, per-flow
// throughput tables (Figure 4), and packet delay statistics
// (Figure 5).
package metrics

// FairnessTracker computes the exact fairness measure
//
//	FM = max over all (t1,t2) and flow pairs (i,j) of
//	     |Sent_i(t1,t2) - Sent_j(t1,t2)|
//
// for a set of flows that are active for the whole run (the regime of
// the paper's Theorem 3 experiments, where every flow is kept
// backlogged). It exploits the identity
//
//	max_{t1<t2} |D_ij(t2) - D_ij(t1)| = max_t D_ij(t) - min_t D_ij(t)
//
// where D_ij(t) = Sent_i(0,t) - Sent_j(0,t), so it needs only O(n^2)
// state and O(n) work per served flit.
type FairnessTracker struct {
	n      int
	served []int64
	// dMin[i][j], dMax[i][j] track the extrema of served[i]-served[j]
	// for i < j.
	dMin, dMax [][]int64
}

// NewFairnessTracker returns a tracker over n flows, all considered
// active from time zero.
func NewFairnessTracker(n int) *FairnessTracker {
	t := &FairnessTracker{
		n:      n,
		served: make([]int64, n),
		dMin:   make([][]int64, n),
		dMax:   make([][]int64, n),
	}
	for i := 0; i < n; i++ {
		t.dMin[i] = make([]int64, n)
		t.dMax[i] = make([]int64, n)
	}
	return t
}

// Serve records that flow received units of service (units flits, or
// bytes — FM is reported in the same unit).
func (t *FairnessTracker) Serve(flow int, units int64) {
	t.served[flow] += units
	si := t.served[flow]
	for j := 0; j < t.n; j++ {
		if j == flow {
			continue
		}
		d := si - t.served[j]
		i, k := flow, j
		if i > k {
			i, k = k, i
			d = -d
		}
		if d < t.dMin[i][k] {
			t.dMin[i][k] = d
		}
		if d > t.dMax[i][k] {
			t.dMax[i][k] = d
		}
	}
}

// Served returns the cumulative service of flow.
func (t *FairnessTracker) Served(flow int) int64 { return t.served[flow] }

// FM returns the fairness measure over all intervals so far.
func (t *FairnessTracker) FM() int64 {
	var fm int64
	for i := 0; i < t.n; i++ {
		for j := i + 1; j < t.n; j++ {
			if d := t.dMax[i][j] - t.dMin[i][j]; d > fm {
				fm = d
			}
		}
	}
	return fm
}

// PairFM returns the fairness measure restricted to the pair (i, j).
func (t *FairnessTracker) PairFM(i, j int) int64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	return t.dMax[i][j] - t.dMin[i][j]
}
