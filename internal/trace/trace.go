// Package trace is the packet flight recorder: span-style lifecycle
// records for a sampled subset of packets — inject (queue entry),
// one record per router hop with the hop's latency decomposed
// (queueing, arbitration, link contention, upstream starvation,
// credit/space starvation), and tail delivery — captured as
// allocation-free fixed-size records in per-router ring buffers and
// merged deterministically at drain.
//
// Determinism contract: whether a packet is sampled is a pure
// function of (seed, packet id), and every recorded field is derived
// from simulation events that the stepping-mode oracles (stepped vs
// event-driven, serial vs sharded-parallel, work-list vs full-scan)
// produce identically. Soft blocks are counted at per-cycle visits
// that happen in every mode (a soft-blocked output stays on the
// pending work-list, so its router is stepped at those cycles even
// event-to-event); hard blocks are recorded as intervals opened at a
// visited cycle and closed by the serial-commit event that ends them
// (flit arrival, credit return). Fault-induced blocking is the one
// thing a dormant event-driven run never visits, so it is attributed
// at export time by overlapping each hop's [grant, depart] span with
// the parsed fault windows — identical in every mode by construction.
// The result: trace exports are byte-identical across -stepped, the
// event core, and -parallel-mesh at any worker count.
package trace

import (
	"repro/internal/flit"
	"repro/internal/obs"
	"sort"
)

// Kind discriminates Record. The numeric order is the merge order
// within one cycle: a packet injected at cycle c sorts before hops
// completing at c, which sort before deliveries at c.
type Kind uint8

const (
	// KindInject marks a packet entering its source queue.
	KindInject Kind = iota
	// KindHop marks one completed router hop (tail flit forwarded).
	KindHop
	// KindDeliver marks the tail flit ejected at the destination.
	KindDeliver
)

// String names the kind for exports.
func (k Kind) String() string {
	switch k {
	case KindInject:
		return "inject"
	case KindHop:
		return "hop"
	case KindDeliver:
		return "deliver"
	}
	return "?"
}

// Record is one fixed-size flight-recorder event. Field meaning by
// Kind:
//
//   - KindInject: Router is the source node, Cycle the queue-entry
//     cycle, Len/Dst/Flow the packet header.
//   - KindHop: Router is the hop's router; the packet occupied input
//     (InPort, InVC) and departed through output (OutPort, OutVC).
//     Arrive is the head flit's arrival at this hop, Eligible the
//     announce-to-arbiter cycle, Grant the arbitration win, Cycle the
//     tail's departure. Contend/UpGap/CrdWait decompose the cycles in
//     (Grant, Cycle]: link-contention losses, upstream starvation
//     (input-empty intervals plus just-arrived-flit waits), and
//     downstream starvation (credit-exhausted intervals plus stop/go
//     gate refusals). Fault-induced cycles are not stored — they are
//     computed at export time from the fault windows (FaultCycles).
//   - KindDeliver: Router is the destination node, Cycle the delivery
//     cycle, Arrive the inject cycle (so end-to-end latency is
//     Cycle-Arrive+1).
type Record struct {
	Kind   Kind
	InPort int8
	InVC   int8
	// OutPort/OutVC are int16 rather than int8: a single-switch run
	// (switchsim) may have more than 127 ports.
	OutPort  int16
	OutVC    int16
	Router   int32
	Flow     int32
	Len      int32
	Dst      int32
	Contend  int32
	UpGap    int32
	CrdWait  int32
	PktID    int64
	Cycle    int64
	Arrive   int64
	Eligible int64
	Grant    int64
}

// Sampler decides, purely from (seed, packet id), whether a packet is
// traced. The decision hashes the id with a splitmix64 finalizer, so
// sampled ids are spread uniformly regardless of allocation order and
// the same (seed, every) pair elects the same packets in every
// stepping mode.
type Sampler struct {
	seed   uint64
	thresh uint64
}

// NewSampler returns a sampler electing roughly one in every packets
// (0 = none, 1 = all).
func NewSampler(seed uint64, every int) Sampler {
	var t uint64
	switch {
	case every <= 0:
		t = 0
	case every == 1:
		t = ^uint64(0)
	default:
		t = ^uint64(0)/uint64(every) + 1
	}
	return Sampler{seed: seed, thresh: t}
}

// Sample reports whether the packet id is traced.
func (s Sampler) Sample(pktID int64) bool {
	switch s.thresh {
	case 0:
		return false
	case ^uint64(0):
		return true
	}
	return mix64(s.seed^uint64(pktID)*0x9e3779b97f4a7c15) < s.thresh
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Config configures a Trace.
type Config struct {
	// Seed derives the sampling decision (independent of the traffic
	// seed unless the caller reuses it).
	Seed uint64
	// SampleEvery traces roughly one in this many packets (0 = none,
	// 1 = every packet).
	SampleEvery int
	// RingCap is the per-router hop-record ring capacity (default
	// 1024). A full ring overwrites its oldest records, counted in
	// the "trace.records_dropped" metric.
	RingCap int
	// MeshRingCap is the inject/deliver ring capacity (default 16384).
	MeshRingCap int
	// Flows is the per-flow rollup width (number of source nodes /
	// flows); rollups ignore flow ids outside [0, Flows).
	Flows int
	// EpochCycles is the Jain fairness epoch length (default 16384).
	EpochCycles int64
	// Reg receives the rollup metrics; nil creates a private registry.
	Reg *obs.Registry
}

// Trace owns the flight recorder for one simulation: the sampler, the
// inject/deliver ring, the per-router hop recorders, and the per-flow
// rollup.
type Trace struct {
	cfg     Config
	s       Sampler
	mesh    ring
	routers []*RouterTrace
	rollup  *Rollup
	sampled *obs.Counter
	dropped *obs.Counter
}

// New builds a Trace from cfg, applying defaults for zero fields.
func New(cfg Config) *Trace {
	if cfg.RingCap <= 0 {
		cfg.RingCap = 1024
	}
	if cfg.MeshRingCap <= 0 {
		cfg.MeshRingCap = 16384
	}
	if cfg.EpochCycles <= 0 {
		cfg.EpochCycles = 16384
	}
	if cfg.Reg == nil {
		cfg.Reg = obs.NewRegistry()
	}
	if cfg.Flows < 0 {
		cfg.Flows = 0
	}
	t := &Trace{
		cfg:     cfg,
		s:       NewSampler(cfg.Seed, cfg.SampleEvery),
		rollup:  newRollup(cfg.Flows, cfg.EpochCycles, cfg.Reg),
		sampled: cfg.Reg.Counter("trace.packets_sampled"),
		dropped: cfg.Reg.Counter("trace.records_dropped"),
	}
	t.mesh.init(cfg.MeshRingCap, func() { t.dropped.Inc() })
	return t
}

// Sampler returns the trace's packet sampler.
func (t *Trace) Sampler() Sampler { return t.s }

// Registry returns the registry holding the rollup metrics.
func (t *Trace) Registry() *obs.Registry { return t.cfg.Reg }

// Rollup returns the per-flow rollup.
func (t *Trace) Rollup() *Rollup { return t.rollup }

// AddRouter creates (and returns) the hop recorder for router id,
// which the caller installs with Router.SetTracer. ports and vcs size
// the per-input tracking state; bufFlits bounds how many sampled
// heads can be queued per input VC.
func (t *Trace) AddRouter(id, ports, vcs, bufFlits int) *RouterTrace {
	rt := newRouterTrace(id, ports, vcs, bufFlits, t)
	t.routers = append(t.routers, rt)
	return rt
}

// Inject records a packet entering its source queue (rollup always;
// a ring record only when the packet is sampled).
func (t *Trace) Inject(pktID int64, src, dst, flow, length int, cycle int64) {
	if !t.s.Sample(pktID) {
		return
	}
	t.sampled.Inc()
	t.mesh.append(Record{
		Kind: KindInject, Router: int32(src), Flow: int32(flow),
		Len: int32(length), Dst: int32(dst), PktID: pktID, Cycle: cycle,
	})
}

// Deliver records a packet's tail ejected at its destination. Called
// from the serial commit phase for every delivered packet (the rollup
// covers all traffic); the ring record is appended only when sampled.
func (t *Trace) Deliver(tail flit.Flit, length int, latency, cycle int64) {
	t.rollup.delivered(tail.Flow, length, latency, cycle)
	if !t.s.Sample(tail.PktID) {
		return
	}
	t.mesh.append(Record{
		Kind: KindDeliver, Router: int32(tail.Dst), Flow: int32(tail.Flow),
		Len: int32(length), Dst: int32(tail.Dst), PktID: tail.PktID,
		Cycle: cycle, Arrive: cycle - latency + 1,
	})
}

// Finish flushes the rollup's final partial Jain epoch. Call once,
// after the simulation drains, before reading records or rollups.
func (t *Trace) Finish(cycle int64) { t.rollup.finish(cycle) }

// Dropped returns how many records were lost to ring overwrites.
func (t *Trace) Dropped() int64 { return t.dropped.Value() }

// Records merges every ring into one deterministic sequence, ordered
// by (cycle, kind, ring) with each ring's internal order preserved.
// Rings are read non-destructively, so Records may be called more
// than once. Overwritten records are simply absent; the merge order
// of what survives is unaffected.
func (t *Trace) Records() []Record {
	type keyed struct {
		rec  Record
		ring int32
	}
	n := t.mesh.len()
	for _, rt := range t.routers {
		n += rt.ring.len()
	}
	ks := make([]keyed, 0, n)
	t.mesh.each(func(r Record) { ks = append(ks, keyed{rec: r, ring: -1}) })
	for _, rt := range t.routers {
		rt.ring.each(func(r Record) { ks = append(ks, keyed{rec: r, ring: rt.id}) })
	}
	sort.SliceStable(ks, func(i, j int) bool {
		a, b := &ks[i], &ks[j]
		if a.rec.Cycle != b.rec.Cycle {
			return a.rec.Cycle < b.rec.Cycle
		}
		if a.rec.Kind != b.rec.Kind {
			return a.rec.Kind < b.rec.Kind
		}
		return a.ring < b.ring
	})
	out := make([]Record, len(ks))
	for i := range ks {
		out[i] = ks[i].rec
	}
	return out
}

// sortRecords orders records by (cycle, kind, router/track), keeping
// the existing order of equals (appends within one track are already
// chronological).
func sortRecords(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := &recs[i], &recs[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Router < b.Router
	})
}
