package wormhole

import "repro/internal/damq"

// portBuf is the input buffering of one router port: either statically
// partitioned per-VC FIFOs (the default) or a dynamically allocated
// multi-queue shared buffer (DAMQ, Tamir & Frazier) — the paper's
// "a single buffer can implement multiple logical queues". The
// notified flag (head packet announced to its arbiter) lives here so
// both modes share the announcement protocol.
type portBuf struct {
	fifos []*vcFIFO    // static mode
	dyn   *damq.Buffer // shared mode
	notif []bool
}

func newPortBuf(vcs, bufFlits, sharedFlits, cap int) *portBuf {
	pb := &portBuf{notif: make([]bool, vcs)}
	if sharedFlits > 0 {
		pb.dyn = damq.New(sharedFlits, vcs, bufFlits)
		if cap > 0 {
			pb.dyn.SetCap(cap)
		}
		return pb
	}
	pb.fifos = make([]*vcFIFO, vcs)
	for v := range pb.fifos {
		pb.fifos[v] = newVCFIFO(bufFlits)
	}
	return pb
}

func (p *portBuf) empty(vc int) bool {
	if p.dyn != nil {
		return p.dyn.Empty(vc)
	}
	return p.fifos[vc].empty()
}

func (p *portBuf) len(vc int) int {
	if p.dyn != nil {
		return p.dyn.Len(vc)
	}
	return p.fifos[vc].len()
}

func (p *portBuf) canAccept(vc int) bool {
	if p.dyn != nil {
		return p.dyn.CanAccept(vc)
	}
	return !p.fifos[vc].full()
}

func (p *portBuf) push(vc int, e entry) {
	if p.dyn != nil {
		if !p.dyn.Push(vc, e.f, e.arrived) {
			panic("wormhole: push to full DAMQ queue (flow control violated)")
		}
		return
	}
	p.fifos[vc].push(e)
}

func (p *portBuf) pop(vc int) entry {
	if p.dyn != nil {
		f, meta := p.dyn.Pop(vc)
		return entry{f: f, arrived: meta}
	}
	return p.fifos[vc].pop()
}

func (p *portBuf) peek(vc int) entry {
	if p.dyn != nil {
		f, meta := p.dyn.Peek(vc)
		return entry{f: f, arrived: meta}
	}
	return p.fifos[vc].peek()
}
