package engine

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/sched"
)

// spySched records every scheduler callback so tests can assert the
// engine's calling discipline exactly. It wraps DRR (the repo's
// LengthAware discipline) so service still works.
type spySched struct {
	*sched.DRR
	arrivals []int
	lengths  []int
}

func (s *spySched) OnArrival(flow int, wasEmpty bool) {
	s.arrivals = append(s.arrivals, flow)
	s.DRR.OnArrival(flow, wasEmpty)
}

func (s *spySched) OnArrivalLength(flow int, length int) {
	s.lengths = append(s.lengths, length)
	s.DRR.OnArrivalLength(flow, length)
}

var _ sched.LengthAware = (*spySched)(nil)

// TestRejectedInjectionNeverReachesScheduler pins the audit behind
// the fault injector's zerolen/badflow directives: a packet refused
// at injection must produce NO scheduler callbacks — in particular
// OnArrivalLength must never run without its matching OnArrival, or
// a LengthAware discipline's length FIFO would desync from the real
// queue and bill the wrong packet.
func TestRejectedInjectionNeverReachesScheduler(t *testing.T) {
	spy := &spySched{DRR: sched.NewDRR(64, nil)}
	e, err := NewEngine(Config{Flows: 2, Scheduler: spy})
	if err != nil {
		t.Fatal(err)
	}
	var rejected int
	e.cfg.OnReject = func(p flit.Packet, cycle int64, err error) { rejected++ }

	if err := e.Inject(flit.Packet{Flow: 0, Length: 0}); err == nil {
		t.Fatal("zero-length packet accepted")
	}
	if err := e.Inject(flit.Packet{Flow: 2, Length: 4}); err == nil {
		t.Fatal("out-of-range flow accepted")
	}
	if err := e.Inject(flit.Packet{Flow: -1, Length: 4}); err == nil {
		t.Fatal("negative flow accepted")
	}
	if len(spy.arrivals) != 0 || len(spy.lengths) != 0 {
		t.Fatalf("rejected packets reached the scheduler: arrivals %v lengths %v",
			spy.arrivals, spy.lengths)
	}
	if rejected != 3 {
		t.Fatalf("OnReject saw %d packets, want 3", rejected)
	}

	// Valid packets produce exactly paired callbacks, in order.
	if err := e.Inject(flit.Packet{Flow: 1, Length: 7}); err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(flit.Packet{Flow: 0, Length: 3}); err != nil {
		t.Fatal(err)
	}
	if len(spy.arrivals) != 2 || len(spy.lengths) != 2 {
		t.Fatalf("paired callbacks: arrivals %v lengths %v", spy.arrivals, spy.lengths)
	}
	if spy.arrivals[0] != 1 || spy.lengths[0] != 7 || spy.arrivals[1] != 0 || spy.lengths[1] != 3 {
		t.Fatalf("callback order wrong: arrivals %v lengths %v", spy.arrivals, spy.lengths)
	}
	// And the run drains cleanly — the length FIFO matches the queue.
	e.Run(20)
	if e.Backlog() != 0 {
		t.Fatal("backlog not drained after rejects")
	}
}
