package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunRecoversPanic is the regression test for the crash-resilience
// contract: a panicking job must not take down the pool (or the
// process) — it surfaces as a structured *PanicError through the
// normal lowest-failing-index error path.
func TestRunRecoversPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran [8]atomic.Bool
		jobs := make([]Job[int], 8)
		for i := range jobs {
			i := i
			jobs[i] = func() (int, error) {
				ran[i].Store(true)
				if i == 3 {
					panic("boom")
				}
				return i, nil
			}
		}
		_, err := Run(jobs, workers)
		if err == nil {
			t.Fatalf("workers=%d: Run succeeded, want a panic error", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error %v is not a *PanicError", workers, err)
		}
		if pe.Job != 3 || pe.Value != "boom" {
			t.Errorf("workers=%d: PanicError = job %d value %v, want job 3 value boom", workers, pe.Job, pe.Value)
		}
		if pe.Stack == "" {
			t.Errorf("workers=%d: PanicError carries no stack trace", workers)
		}
		// Every job below the failing index is guaranteed to have run.
		for i := 0; i < 3; i++ {
			if !ran[i].Load() {
				t.Errorf("workers=%d: job %d below the failing index never ran", workers, i)
			}
		}
	}
}

func TestWithRetryEventuallySucceeds(t *testing.T) {
	var attempts atomic.Int64
	jobs := []Job[string]{func() (string, error) {
		if attempts.Add(1) < 3 {
			return "", fmt.Errorf("transient")
		}
		return "ok", nil
	}}
	got, err := Run(jobs, 1, WithRetry(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "ok" || attempts.Load() != 3 {
		t.Errorf("result %q after %d attempts, want ok after 3", got[0], attempts.Load())
	}
}

func TestWithRetryExhaustedReportsFinalError(t *testing.T) {
	var attempts atomic.Int64
	sentinel := errors.New("still broken")
	jobs := []Job[int]{func() (int, error) {
		attempts.Add(1)
		return 0, sentinel
	}}
	_, err := Run(jobs, 1, WithRetry(2, 0))
	if !errors.Is(err, sentinel) {
		t.Fatalf("error = %v, want the job's final error", err)
	}
	if attempts.Load() != 3 {
		t.Errorf("job ran %d times, want 3 (initial + 2 retries)", attempts.Load())
	}
}

func TestWithRetryRecoversFromPanic(t *testing.T) {
	var attempts atomic.Int64
	jobs := []Job[int]{func() (int, error) {
		if attempts.Add(1) == 1 {
			panic("once")
		}
		return 7, nil
	}}
	got, err := Run(jobs, 1, WithRetry(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 || attempts.Load() != 2 {
		t.Errorf("got %d after %d attempts, want 7 after 2", got[0], attempts.Load())
	}
}

// TestRetryBackoffDoubles pins the backoff sequence without real
// sleeping, using the internal hook Run wires to time.Sleep.
func TestRetryBackoffDoubles(t *testing.T) {
	var slept []time.Duration
	o := &options{
		retries: 3,
		backoff: time.Millisecond,
		sleep:   func(d time.Duration) { slept = append(slept, d) },
	}
	_, err := runJob(o, 0, func() (int, error) { return 0, errors.New("no") })
	if err == nil {
		t.Fatal("want the final error after exhausting retries")
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}

func TestWithTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	jobs := []Job[int]{
		func() (int, error) { return 1, nil },
		func() (int, error) { <-block; return 2, nil },
	}
	_, err := Run(jobs, 1, WithTimeout(20*time.Millisecond))
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("error = %v, want a *TimeoutError", err)
	}
	if te.Job != 1 || te.Limit != 20*time.Millisecond {
		t.Errorf("TimeoutError = job %d limit %v, want job 1 limit 20ms", te.Job, te.Limit)
	}
}

func TestWithTimeoutFastJobsPass(t *testing.T) {
	jobs := make([]Job[int], 5)
	for i := range jobs {
		i := i
		jobs[i] = func() (int, error) { return i, nil }
	}
	got, err := Run(jobs, 2, WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i)
		}
	}
}

// TestWithContextCancelMidBackoff is the shutdown-responsiveness
// test: a job stuck in a long retry backoff must abandon the sleep
// the moment the context is canceled, instead of sleeping out its
// schedule.
func TestWithContextCancelMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("transient")
	var attempts atomic.Int64
	jobs := []Job[int]{func() (int, error) {
		attempts.Add(1)
		return 0, boom
	}}

	done := make(chan error, 1)
	start := time.Now()
	go func() {
		// 10s backoff: without cancellation this Run would take ~70s
		// (10+20+40) before failing.
		_, err := Run(jobs, 1, WithRetry(3, 10*time.Second), WithContext(ctx))
		done <- err
	}()
	// Let the first attempt fail and the backoff start, then cancel.
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return promptly after cancellation mid-backoff")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancellation took %v, want well under the 10s backoff", el)
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("job ran %d times, want 1 (canceled during the first backoff)", n)
	}
}

// TestWithContextPreCanceled: an already-canceled context fails jobs
// before their first attempt.
func TestWithContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	jobs := []Job[int]{func() (int, error) { ran.Add(1); return 1, nil }}
	_, err := Run(jobs, 1, WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatal("job ran despite pre-canceled context")
	}
}

// TestWithContextNilKeepsSleepSeam: without WithContext the retry
// path must keep using the injected sleep (no real timers), pinning
// that existing fake-time tests stay valid.
func TestWithContextNilKeepsSleepSeam(t *testing.T) {
	boom := errors.New("transient")
	calls := 0
	var slept []time.Duration
	o := options{
		sleep:   func(d time.Duration) { slept = append(slept, d) },
		retries: 2,
		backoff: time.Minute,
	}
	_, err := runJob(&o, 0, Job[int](func() (int, error) {
		calls++
		return 0, boom
	}))
	if !errors.Is(err, boom) {
		t.Fatalf("runJob error = %v, want the job error", err)
	}
	if calls != 3 {
		t.Fatalf("job ran %d times, want 3", calls)
	}
	want := []time.Duration{time.Minute, 2 * time.Minute}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("sleeps %v, want %v", slept, want)
	}
}
