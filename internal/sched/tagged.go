package sched

import "container/heap"

// tagHeap is a min-heap of flows keyed by the finish tag of each
// flow's head packet. Shared by the timestamp disciplines (SCFQ,
// WFQ, VirtualClock), giving them their characteristic O(log n)
// work complexity — the cost the paper's Table 1 charges to "Fair
// Queuing".
type tagHeap struct {
	entries []tagEntry
	pos     map[int]int // flow -> index in entries, for debug checks
}

type tagEntry struct {
	flow int
	tag  float64
}

func newTagHeap() *tagHeap {
	return &tagHeap{pos: make(map[int]int)}
}

func (h *tagHeap) Len() int { return len(h.entries) }

func (h *tagHeap) Less(i, j int) bool {
	if h.entries[i].tag != h.entries[j].tag {
		return h.entries[i].tag < h.entries[j].tag
	}
	// Deterministic tie-break on flow id.
	return h.entries[i].flow < h.entries[j].flow
}

func (h *tagHeap) Swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.pos[h.entries[i].flow] = i
	h.pos[h.entries[j].flow] = j
}

func (h *tagHeap) Push(x any) {
	e := x.(tagEntry)
	h.pos[e.flow] = len(h.entries)
	h.entries = append(h.entries, e)
}

func (h *tagHeap) Pop() any {
	e := h.entries[len(h.entries)-1]
	h.entries = h.entries[:len(h.entries)-1]
	delete(h.pos, e.flow)
	return e
}

// push inserts flow with the given head tag. The flow must not
// already be present.
func (h *tagHeap) push(flow int, tag float64) {
	if _, ok := h.pos[flow]; ok {
		panic("sched: flow already in tag heap")
	}
	heap.Push(h, tagEntry{flow: flow, tag: tag})
}

// popMin removes and returns the flow with the smallest head tag.
func (h *tagHeap) popMin() (flow int, tag float64) {
	if h.Len() == 0 {
		panic("sched: popMin on empty tag heap")
	}
	e := heap.Pop(h).(tagEntry)
	return e.flow, e.tag
}

// peekMin returns the flow with the smallest head tag without
// removing it.
func (h *tagHeap) peekMin() (flow int, tag float64) {
	if h.Len() == 0 {
		panic("sched: peekMin on empty tag heap")
	}
	return h.entries[0].flow, h.entries[0].tag
}

// fifoF64 is a growable ring buffer of float64 tags.
type fifoF64 struct {
	buf        []float64
	head, size int
}

func (q *fifoF64) empty() bool { return q.size == 0 }

func (q *fifoF64) push(v float64) {
	if q.size == len(q.buf) {
		n := len(q.buf) * 2
		if n == 0 {
			n = 8
		}
		nb := make([]float64, n)
		for i := 0; i < q.size; i++ {
			nb[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = nb
		q.head = 0
	}
	q.buf[(q.head+q.size)%len(q.buf)] = v
	q.size++
}

func (q *fifoF64) pop() float64 {
	if q.size == 0 {
		panic("sched: pop from empty tag fifo")
	}
	v := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return v
}

func (q *fifoF64) peek() float64 {
	if q.size == 0 {
		panic("sched: peek on empty tag fifo")
	}
	return q.buf[q.head]
}

// weightFn normalises a user-supplied weight function.
func weightFn(w func(flow int) float64) func(flow int) float64 {
	if w == nil {
		return func(int) float64 { return 1 }
	}
	return func(flow int) float64 {
		v := w(flow)
		if v <= 0 {
			panic("sched: non-positive flow weight")
		}
		return v
	}
}
