package trace

import (
	"fmt"
	"io"
	"repro/internal/obs"
)

// JainEpoch is the Jain fairness index of one epoch, computed over
// the flit service each active flow received in it.
type JainEpoch struct {
	Start  int64 `json:"start"`
	Active int   `json:"active_flows"`
	// PPM is the index in parts-per-million (1e6 = perfectly fair).
	PPM int64 `json:"ppm"`
}

// Rollup aggregates per-flow latency and hop-time decomposition.
//
// Latency covers every delivered packet (delivery runs in the serial
// commit phase, so the plain per-flow state is race-free); the hop
// decomposition covers sampled hops only and is accumulated with
// atomic adds, since Departed fires inside the concurrent compute
// phase under sharded stepping (int64 addition commutes, so the final
// sums are deterministic at any worker count).
//
// Deliveries are buffered and folded into the per-flow state in
// batches: the hot path is a sequential append, and the scattered
// writes across ~flows cold histogram cache lines are amortized over
// deliverBatch packets. Deliveries arrive in serial-commit order in
// every stepping mode and the fold replays that exact sequence, so
// batching cannot perturb byte-identity; it only means registry
// metrics lag the simulation by up to one batch until Finish.
type Rollup struct {
	flows    int
	epochLen int64

	// Serial-commit state (deliveries only).
	pend       []delivery
	deliveredN []int64
	flitsEp    []int64
	epochStart int64
	epochs     []JainEpoch

	// Per-flow latency histograms (standalone: the registry gets the
	// aggregate; per-flow quantiles render through Render).
	lat    []*obs.Histogram
	latAll *obs.Histogram

	// Sampled-hop decomposition, per flow, in cycles (atomic).
	hopsN, queueC, arbC, contendC, upC, crdC *obs.Vec

	deliveredC *obs.Counter
	jainG      *obs.Gauge
	epochsC    *obs.Counter
}

// delivery is one buffered delivered() call.
type delivery struct {
	flow, length int32
	latency      int64
	cycle        int64
}

// deliverBatch is how many deliveries accumulate before a fold.
const deliverBatch = 4096

func newRollup(flows int, epochLen int64, reg *obs.Registry) *Rollup {
	ro := &Rollup{
		flows:      flows,
		epochLen:   epochLen,
		pend:       make([]delivery, 0, deliverBatch),
		deliveredN: make([]int64, flows),
		flitsEp:    make([]int64, flows),
		lat:        make([]*obs.Histogram, flows),
		latAll:     reg.Histogram("trace.latency_cycles", obs.HistogramOpts{Log2: true}),
		hopsN:      reg.Vec("trace.hops", flows),
		queueC:     reg.Vec("trace.hop_queue_cycles", flows),
		arbC:       reg.Vec("trace.hop_arb_cycles", flows),
		contendC:   reg.Vec("trace.hop_contend_cycles", flows),
		upC:        reg.Vec("trace.hop_upstream_cycles", flows),
		crdC:       reg.Vec("trace.hop_credit_cycles", flows),
		deliveredC: reg.Counter("trace.delivered_packets"),
		jainG:      reg.Gauge("trace.jain_ppm"),
		epochsC:    reg.Counter("trace.jain_epochs"),
	}
	for i := range ro.lat {
		ro.lat[i] = obs.NewHistogram(obs.HistogramOpts{Log2: true})
	}
	return ro
}

// hop folds one sampled hop span into the decomposition (called from
// RouterTrace.Departed, possibly concurrently across routers).
func (ro *Rollup) hop(flow int, st *hopState) {
	if flow < 0 || flow >= ro.flows {
		return
	}
	ro.hopsN.Add(flow, 1)
	ro.queueC.Add(flow, st.eligible-st.arrive)
	ro.arbC.Add(flow, st.grant-st.eligible)
	ro.contendC.Add(flow, int64(st.contend))
	ro.upC.Add(flow, int64(st.upGap))
	ro.crdC.Add(flow, int64(st.crdWait))
}

// delivered buffers one delivery (serial commit phase, all packets).
func (ro *Rollup) delivered(flow, length int, latency, cycle int64) {
	ro.pend = append(ro.pend, delivery{
		flow: int32(flow), length: int32(length), latency: latency, cycle: cycle,
	})
	if len(ro.pend) >= deliverBatch {
		ro.fold()
	}
}

// fold replays the buffered deliveries, in arrival order, into the
// epoch accounting and latency histograms.
func (ro *Rollup) fold() {
	for _, d := range ro.pend {
		ro.flushEpochs(d.cycle)
		ro.latAll.Observe(d.latency)
		f := int(d.flow)
		if f < 0 || f >= ro.flows {
			continue
		}
		ro.deliveredN[f]++
		ro.flitsEp[f] += int64(d.length)
		ro.lat[f].Observe(d.latency)
	}
	ro.deliveredC.Add(int64(len(ro.pend)))
	ro.pend = ro.pend[:0]
}

// flushEpochs closes every epoch that ended before cycle. Epochs in
// which nothing was delivered are skipped (not appended), and a long
// idle gap fast-forwards in one step.
func (ro *Rollup) flushEpochs(cycle int64) {
	for cycle-ro.epochStart >= ro.epochLen {
		if !ro.closeEpoch() {
			// Nothing delivered since epochStart: jump to the epoch
			// containing cycle without appending empty epochs.
			gap := (cycle - ro.epochStart) / ro.epochLen
			ro.epochStart += gap * ro.epochLen
			return
		}
		ro.epochStart += ro.epochLen
	}
}

// closeEpoch computes and appends the current epoch's Jain index,
// reporting whether any flow was active in it.
func (ro *Rollup) closeEpoch() bool {
	var sum, sumSq float64
	active := 0
	for i, v := range ro.flitsEp {
		if v > 0 {
			active++
			f := float64(v)
			sum += f
			sumSq += f * f
			ro.flitsEp[i] = 0
		}
	}
	if active == 0 {
		return false
	}
	ppm := int64(sum * sum * 1e6 / (float64(active) * sumSq))
	ro.epochs = append(ro.epochs, JainEpoch{Start: ro.epochStart, Active: active, PPM: ppm})
	ro.jainG.Set(ppm)
	ro.epochsC.Inc()
	return true
}

// finish folds any buffered deliveries and closes the final partial
// epoch (see Trace.Finish).
func (ro *Rollup) finish(cycle int64) {
	ro.fold()
	ro.flushEpochs(cycle)
	if ro.closeEpoch() {
		ro.epochStart += ro.epochLen
	}
}

// Epochs returns the closed Jain epochs in order.
func (ro *Rollup) Epochs() []JainEpoch {
	ro.fold()
	return ro.epochs
}

// Latency returns the aggregate latency histogram (all packets).
func (ro *Rollup) Latency() *obs.Histogram {
	ro.fold()
	return ro.latAll
}

// FlowLatency returns flow's latency histogram (all that flow's
// packets), or nil when out of range.
func (ro *Rollup) FlowLatency(flow int) *obs.Histogram {
	ro.fold()
	if flow < 0 || flow >= ro.flows {
		return nil
	}
	return ro.lat[flow]
}

// Render renders the rollup: per-flow tail latencies with the
// sampled-hop time decomposition, then the Jain fairness epochs. The
// output is deterministic (fixed iteration order, integer cycles) so
// differential tests can compare it byte for byte across stepping
// modes.
func (ro *Rollup) Render(w io.Writer) error {
	ro.fold()
	if _, err := fmt.Fprintf(w, "per-flow latency (cycles; all packets) and sampled hop decomposition (total cycles):\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, " flow      n    p50    p99   p999    max | hops  queue    arb  contend  upstream  credit\n"); err != nil {
		return err
	}
	for f := 0; f < ro.flows; f++ {
		if ro.deliveredN[f] == 0 && ro.hopsN.Value(f) == 0 {
			continue
		}
		h := ro.lat[f]
		if _, err := fmt.Fprintf(w, " %4d %6d %6d %6d %6d %6d | %4d %6d %6d %8d %9d %7d\n",
			f, ro.deliveredN[f], h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.Max(),
			ro.hopsN.Value(f), ro.queueC.Value(f), ro.arbC.Value(f),
			ro.contendC.Value(f), ro.upC.Value(f), ro.crdC.Value(f)); err != nil {
			return err
		}
	}
	agg := ro.latAll
	if _, err := fmt.Fprintf(w, "all flows: n=%d p50=%d p99=%d p999=%d max=%d\n",
		agg.Count(), agg.Quantile(0.50), agg.Quantile(0.99), agg.Quantile(0.999), agg.Max()); err != nil {
		return err
	}
	if len(ro.epochs) == 0 {
		_, err := fmt.Fprintf(w, "Jain fairness: no completed epochs\n")
		return err
	}
	min, sum := ro.epochs[0].PPM, int64(0)
	for _, e := range ro.epochs {
		if e.PPM < min {
			min = e.PPM
		}
		sum += e.PPM
	}
	if _, err := fmt.Fprintf(w, "Jain fairness (%d-cycle epochs): %d epochs, mean %.4f, min %.4f\n",
		ro.epochLen, len(ro.epochs), float64(sum)/float64(len(ro.epochs))/1e6, float64(min)/1e6); err != nil {
		return err
	}
	for _, e := range ro.epochs {
		if _, err := fmt.Fprintf(w, "  epoch @%-8d flows=%-3d jain=%.4f\n", e.Start, e.Active, float64(e.PPM)/1e6); err != nil {
			return err
		}
	}
	return nil
}
