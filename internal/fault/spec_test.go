package fault_test

import (
	"strings"
	"testing"

	"repro/internal/fault"
)

func TestParseEmptySpecIsNil(t *testing.T) {
	for _, s := range []string{"", "   ", "\t\n"} {
		spec, err := fault.Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if spec != nil {
			t.Fatalf("Parse(%q) = %+v, want nil", s, spec)
		}
	}
	// A nil spec formats as the empty string.
	var nilSpec *fault.Spec
	if got := nilSpec.String(); got != "" {
		t.Fatalf("nil Spec String() = %q, want empty", got)
	}
}

func TestParseDefaults(t *testing.T) {
	spec, err := fault.Parse("drop(p=0.5)")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Directives) != 1 {
		t.Fatalf("got %d directives, want 1", len(spec.Directives))
	}
	d := spec.Directives[0]
	want := fault.Directive{Kind: "drop", Flow: -1, Port: -1, Router: -1, P: 0.5, MKind: fault.MalformedZeroLen}
	if d != want {
		t.Fatalf("directive = %+v, want %+v", d, want)
	}
}

func TestParseFullSpec(t *testing.T) {
	src := "stall(flow=2, at=100, dur=50); freeze(router=3,at=7); malformed(kind=duphead,p=0.25); corrupt(p=0.1,port=1); drop(p=1,router=2,port=4)"
	spec, err := fault.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.String(); got != strings.TrimSpace(src) {
		t.Errorf("String() = %q, want the source text", got)
	}
	want := []fault.Directive{
		{Kind: "stall", Flow: 2, Port: -1, Router: -1, At: 100, Dur: 50, MKind: fault.MalformedZeroLen},
		{Kind: "freeze", Flow: -1, Port: -1, Router: 3, At: 7, MKind: fault.MalformedZeroLen},
		{Kind: "malformed", Flow: -1, Port: -1, Router: -1, P: 0.25, MKind: fault.MalformedDupHead},
		{Kind: "corrupt", Flow: -1, Port: 1, Router: -1, P: 0.1, MKind: fault.MalformedZeroLen},
		{Kind: "drop", Flow: -1, Port: 4, Router: 2, P: 1, MKind: fault.MalformedZeroLen},
	}
	if len(spec.Directives) != len(want) {
		t.Fatalf("got %d directives, want %d", len(spec.Directives), len(want))
	}
	for i, d := range spec.Directives {
		if d != want[i] {
			t.Errorf("directive %d = %+v, want %+v", i, d, want[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string // required substring of the error
	}{
		{"bogus(p=1)", "unknown directive kind"},
		{"stall", "not kind(key=value,...)"},
		{"stall(at)", "not key=value"},
		{"stall(at=x)", `key "at"`},
		{"stall(at=-1)", "at >= 0"},
		{"stall(dur=-2)", "dur >= 0"},
		{"drop()", "requires p > 0"},
		{"drop(p=0)", "requires p > 0"},
		{"drop(p=1.5)", "outside [0,1]"},
		{"drop(p=-0.1)", "outside [0,1]"},
		{"corrupt(p=0)", "requires p > 0"},
		{"malformed(kind=weird,p=0.5)", "unknown malformed kind"},
		{"malformed(p=0.5,turbo=1)", "unknown key"},
		{";", "empty spec"},
	}
	for _, c := range cases {
		_, err := fault.Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.src, err, c.frag)
		}
	}
}

// TestParseUnknownKindListsValidKinds pins the unknown-kind error
// message: it must name the rejected kind and enumerate every valid
// kind, so a typo in a -faults flag is self-correcting from the error
// alone.
func TestParseUnknownKindListsValidKinds(t *testing.T) {
	cases := []struct {
		src  string
		kind string // the rejected kind the message must quote
	}{
		{"bogus(p=1)", "bogus"},
		{"slows(p=1,ms=2)", "slows"},       // near-miss of a valid kind
		{"STALL(at=1)", "STALL"},           // kinds are case-sensitive
		{"drop(p=0.1);typo(x=1)", "typo"},  // error points at the bad directive
		{" flod (tenant=a,rps=1)", "flod"}, // whitespace-trimmed kind
	}
	for _, c := range cases {
		_, err := fault.Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want unknown-kind error", c.src)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, `unknown directive kind "`+c.kind+`"`) {
			t.Errorf("Parse(%q) error %q does not quote kind %q", c.src, msg, c.kind)
		}
		// The full valid-kind list must appear, in grammar order.
		wantList := "valid kinds: " + strings.Join(fault.Kinds, ", ")
		if !strings.Contains(msg, wantList) {
			t.Errorf("Parse(%q) error %q missing %q", c.src, msg, wantList)
		}
		for _, k := range fault.Kinds {
			if !strings.Contains(msg, k) {
				t.Errorf("Parse(%q) error %q missing valid kind %q", c.src, msg, k)
			}
		}
	}
}

// TestParseServeDirectives covers the service-side grammar extension.
func TestParseServeDirectives(t *testing.T) {
	spec, err := fault.Parse("slow(p=0.1,ms=20);stuck(p=0.01,ms=300,tenant=hog);burst(tenant=hog,rps=250,at=500,dur=1000);flood(tenant=hog,rps=800)")
	if err != nil {
		t.Fatal(err)
	}
	want := []fault.Directive{
		{Kind: "slow", Flow: -1, Port: -1, Router: -1, P: 0.1, MS: 20, MKind: fault.MalformedZeroLen},
		{Kind: "stuck", Flow: -1, Port: -1, Router: -1, P: 0.01, MS: 300, Tenant: "hog", MKind: fault.MalformedZeroLen},
		{Kind: "burst", Flow: -1, Port: -1, Router: -1, Tenant: "hog", RPS: 250, At: 500, Dur: 1000, MKind: fault.MalformedZeroLen},
		{Kind: "flood", Flow: -1, Port: -1, Router: -1, Tenant: "hog", RPS: 800, MKind: fault.MalformedZeroLen},
	}
	if len(spec.Directives) != len(want) {
		t.Fatalf("got %d directives, want %d", len(spec.Directives), len(want))
	}
	for i, d := range spec.Directives {
		if d != want[i] {
			t.Errorf("directive %d = %+v, want %+v", i, d, want[i])
		}
	}
}

func TestParseServeDirectiveErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"slow(ms=10)", "requires p > 0"},
		{"slow(p=0.5)", "requires ms > 0"},
		{"stuck(p=0.5,ms=0)", "requires ms > 0"},
		{"burst(rps=10,at=0,dur=5)", "requires tenant"},
		{"burst(tenant=a,at=0,dur=5)", "requires rps > 0"},
		{"burst(tenant=a,rps=10)", "dur > 0"},
		{"flood(tenant=a)", "requires rps > 0"},
		{"flood(rps=5)", "requires tenant"},
	}
	for _, c := range cases {
		_, err := fault.Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.src, err, c.frag)
		}
	}
}
