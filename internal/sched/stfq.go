package sched

// STFQ is Start-time Fair Queuing (Goyal, Vin & Cheng, SIGCOMM 1996):
// like SCFQ it self-clocks its virtual time from the packet in
// service, but it serves packets in increasing *start*-tag order,
//
//	S_i^k = max(v, F_i^{k-1}),   F_i^k = S_i^k + L_i^k / w_i,
//
// with v the start tag of the packet in service. Compared to SCFQ it
// trades a slightly looser fairness bound for much better latency to
// low-rate flows. Included as an additional O(log n), LengthAware
// baseline for the Table 1 family.
type STFQ struct {
	weight  func(flow int) float64
	heap    *tagHeap
	starts  map[int]*fifoF64 // queued start tags per flow
	lastFin map[int]float64
	v       float64
	current int
	pending int
}

// NewSTFQ returns an STFQ scheduler; nil weight means equal weights.
func NewSTFQ(weight func(flow int) float64) *STFQ {
	return &STFQ{
		weight:  weightFn(weight),
		heap:    newTagHeap(),
		starts:  make(map[int]*fifoF64),
		lastFin: make(map[int]float64),
		current: -1,
		pending: -1,
	}
}

// Name implements Scheduler.
func (s *STFQ) Name() string { return "STFQ" }

// OnArrival implements Scheduler.
func (s *STFQ) OnArrival(flow int, wasEmpty bool) {
	if s.pending != -1 {
		panic("sched: STFQ OnArrival without OnArrivalLength for previous packet")
	}
	s.pending = flow
}

// OnArrivalLength implements LengthAware.
func (s *STFQ) OnArrivalLength(flow int, length int) {
	if s.pending != flow {
		panic("sched: STFQ OnArrivalLength does not match OnArrival")
	}
	s.pending = -1
	start := s.v
	if f := s.lastFin[flow]; f > start {
		start = f
	}
	s.lastFin[flow] = start + float64(length)/s.weight(flow)
	q := s.starts[flow]
	if q == nil {
		q = &fifoF64{}
		s.starts[flow] = q
	}
	wasIdle := q.empty() && flow != s.current
	q.push(start)
	if wasIdle {
		s.heap.push(flow, start)
	}
}

// NextFlow implements Scheduler.
func (s *STFQ) NextFlow() int {
	if s.current != -1 {
		panic("sched: STFQ.NextFlow while a packet is in service")
	}
	flow, start := s.heap.popMin()
	s.current = flow
	s.v = start
	return flow
}

// OnPacketDone implements Scheduler.
func (s *STFQ) OnPacketDone(flow int, cost int64, nowEmpty bool) {
	if flow != s.current {
		panic("sched: STFQ completion for a flow not in service")
	}
	s.current = -1
	q := s.starts[flow]
	q.pop()
	if !q.empty() {
		s.heap.push(flow, q.peek())
	}
}

var _ LengthAware = (*STFQ)(nil)
