package noc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sched"
)

func testTorus(t *testing.T, k int) *Mesh {
	t.Helper()
	m, err := NewMesh(Config{
		K: k, VCs: 2, BufFlits: 8, Torus: true,
		NewArb: func() sched.Scheduler { return core.New() },
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTorusValidation(t *testing.T) {
	for _, vcs := range []int{1, 3} {
		if _, err := NewMesh(Config{
			K: 3, VCs: vcs, BufFlits: 4, Torus: true,
			NewArb: func() sched.Scheduler { return core.New() },
		}); err == nil {
			t.Errorf("torus with %d VCs accepted", vcs)
		}
	}
}

func TestTorusMinimalRouting(t *testing.T) {
	m := testTorus(t, 4)
	at := m.NodeID(0, 0)
	cases := []struct {
		dst  int
		want int
	}{
		{m.NodeID(1, 0), PortEast},
		{m.NodeID(3, 0), PortWest}, // wrap west is 1 hop, east is 3
		{m.NodeID(0, 1), PortSouth},
		{m.NodeID(0, 3), PortNorth}, // wrap north is 1 hop
		{m.NodeID(2, 0), PortEast},  // tie (2 hops both ways) -> positive
		{at, PortLocal},
	}
	for _, c := range cases {
		if got := m.route(at, c.dst); got != c.want {
			t.Errorf("route(0 -> %d) = %d, want %d", c.dst, got, c.want)
		}
	}
}

func TestTorusWrapDetection(t *testing.T) {
	m := testTorus(t, 4)
	if !m.crossesWrap(m.NodeID(3, 1), PortEast) {
		t.Error("east from x=3 should wrap")
	}
	if m.crossesWrap(m.NodeID(2, 1), PortEast) {
		t.Error("east from x=2 should not wrap")
	}
	if !m.crossesWrap(m.NodeID(1, 0), PortNorth) {
		t.Error("north from y=0 should wrap")
	}
	if m.crossesWrap(m.NodeID(1, 0), PortLocal) {
		t.Error("local never wraps")
	}
}

func TestTorusDatelineVC(t *testing.T) {
	m := testTorus(t, 4)
	// Crossing the wrap moves VC 0 -> 1.
	if got := m.torusOutVC(m.NodeID(3, 0), PortEast, PortWest, 0); got != 1 {
		t.Errorf("wrap crossing kept VC %d", got)
	}
	// Continuing in-dimension on the high VC stays high.
	if got := m.torusOutVC(m.NodeID(1, 0), PortEast, PortWest, 1); got != 1 {
		t.Errorf("post-dateline VC dropped to %d", got)
	}
	// Turning into Y resets to the low half.
	if got := m.torusOutVC(m.NodeID(1, 0), PortSouth, PortWest, 1); got != 0 {
		t.Errorf("dimension turn kept VC %d", got)
	}
	// Injection (local input) starts low even if the caller passes a
	// high VC.
	if got := m.torusOutVC(m.NodeID(1, 1), PortEast, PortLocal, 1); got != 0 {
		t.Errorf("fresh injection VC = %d, want 0", got)
	}
}

func TestTorusAllPairsDelivery(t *testing.T) {
	for _, k := range []int{3, 4} {
		m := testTorus(t, k)
		count := 0
		for s := 0; s < m.Nodes(); s++ {
			for d := 0; d < m.Nodes(); d++ {
				m.Send(s, d, 5)
				count++
			}
		}
		if !m.Drain(50000) {
			t.Fatalf("k=%d torus did not drain; %d in flight", k, m.InFlight())
		}
		var total int64
		for s := 0; s < m.Nodes(); s++ {
			total += m.DeliveredPackets[s]
		}
		if total != int64(count) {
			t.Fatalf("k=%d: delivered %d of %d", k, total, count)
		}
	}
}

// TestTorusNoDeadlockUnderHeavyLoad is the deadlock regression test:
// sustained high uniform load around the wrap links must always make
// forward progress and drain.
func TestTorusNoDeadlockUnderHeavyLoad(t *testing.T) {
	m := testTorus(t, 4)
	src := rng.New(31)
	inj := NewInjector(m, 0.08, Uniform{Nodes: m.Nodes()}, rng.NewUniform(1, 12), src)
	inj.MaxPending = 4
	for c := 0; c < 40000; c++ {
		inj.Step()
		m.Step()
	}
	if !m.Drain(200000) {
		t.Fatalf("torus deadlocked or livelocked; %d packets in flight", m.InFlight())
	}
	var injected, delivered int64
	for n := 0; n < m.Nodes(); n++ {
		injected += inj.Injected[n]
		delivered += m.DeliveredPackets[n]
	}
	if injected == 0 || injected != delivered {
		t.Fatalf("injected %d, delivered %d", injected, delivered)
	}
}

// TestTorusShorterPathsThanMesh: average latency on the torus must be
// below the mesh's for uniform traffic at low load (wraparound halves
// the average hop count).
func TestTorusShorterPathsThanMesh(t *testing.T) {
	run := func(torus bool) float64 {
		m, err := NewMesh(Config{
			K: 4, VCs: 2, BufFlits: 8, Torus: torus,
			NewArb: func() sched.Scheduler { return core.New() },
		})
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(17)
		inj := NewInjector(m, 0.01, Uniform{Nodes: m.Nodes()}, rng.NewUniform(1, 8), src)
		for c := 0; c < 20000; c++ {
			inj.Step()
			m.Step()
		}
		m.Drain(100000)
		return m.Latency.Mean()
	}
	mesh := run(false)
	torus := run(true)
	if torus >= mesh {
		t.Errorf("torus latency %.1f >= mesh %.1f at low load", torus, mesh)
	}
}
