package queue

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEventHeapBasics(t *testing.T) {
	var q EventHeap
	if q.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	if q.NextAt() != EventNever {
		t.Fatalf("empty NextAt = %d, want EventNever", q.NextAt())
	}
	q.Push(Event{At: 30, ID: 1})
	q.Push(Event{At: 10, ID: 2})
	q.Push(Event{At: 20, ID: 3})
	if q.NextAt() != 10 {
		t.Fatalf("NextAt = %d, want 10", q.NextAt())
	}
	for _, want := range []int64{10, 20, 30} {
		if got := q.Pop(); got.At != want {
			t.Fatalf("Pop().At = %d, want %d", got.At, want)
		}
	}
	if q.Len() != 0 {
		t.Fatal("heap not empty after draining")
	}
}

func TestEventHeapDropDue(t *testing.T) {
	var q EventHeap
	for _, at := range []int64{5, 10, 10, 15, 40} {
		q.Push(Event{At: at})
	}
	if next := q.DropDue(10); next != 15 {
		t.Fatalf("DropDue(10) = %d, want 15", next)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d after DropDue, want 2", q.Len())
	}
	if next := q.DropDue(100); next != EventNever {
		t.Fatalf("DropDue(100) = %d, want EventNever", next)
	}
}

func TestEventHeapDuplicates(t *testing.T) {
	var q EventHeap
	e := Event{At: 7, ID: 3, Kind: 1}
	q.Push(e)
	q.Push(e)
	if q.Pop() != e || q.Pop() != e {
		t.Fatal("duplicate events not both returned")
	}
}

// TestEventHeapDeterministicOrder pins the event-queue determinism
// contract: same-cycle events pop in a fixed (id, kind) order at ANY
// heap insertion order. The heap's comparison is a total order over
// the whole struct, so even though a binary heap is not stable, the
// pop sequence of a multiset of events is canonical. This test runs
// under -race in the CI parallel-determinism job.
func TestEventHeapDeterministicOrder(t *testing.T) {
	// Events clustered on a handful of cycles, with colliding ids and
	// kinds (including exact duplicates) to stress the tie-breaks.
	var events []Event
	for _, at := range []int64{100, 100, 200, 300} {
		for id := int32(0); id < 6; id++ {
			for kind := uint8(0); kind < 3; kind++ {
				events = append(events, Event{At: at, ID: id, Kind: kind})
			}
		}
	}
	want := append([]Event(nil), events...)
	sort.Slice(want, func(i, j int) bool { return eventLess(want[i], want[j]) })

	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		perm := append([]Event(nil), events...)
		switch trial {
		case 0: // ascending insertion
		case 1: // descending insertion
			for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
				perm[i], perm[j] = perm[j], perm[i]
			}
		default:
			r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		}
		var q EventHeap
		for _, e := range perm {
			q.Push(e)
		}
		for i := range want {
			if got := q.Pop(); got != want[i] {
				t.Fatalf("trial %d: pop %d = %+v, want %+v (insertion order changed the pop order)",
					trial, i, got, want[i])
			}
		}
	}
}
