// Package plot renders the reproduction's "figures" in a terminal:
// ASCII bar charts for the per-flow throughput comparisons
// (Figure 4), ASCII line charts for the delay and fairness curves
// (Figures 5 and 6), and CSV output for external plotting.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar renders a horizontal bar chart: one labelled bar per value,
// scaled to width characters at the maximum value.
func Bar(w io.Writer, title string, labels []string, values []float64, width int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("plot: %d labels for %d values", len(labels), len(values))
	}
	if width < 10 {
		width = 60
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	max := 0.0
	labelW := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(math.Round(v / max * float64(width)))
		}
		if _, err := fmt.Fprintf(w, "  %-*s | %s %.1f\n",
			labelW, labels[i], strings.Repeat("#", n), v); err != nil {
			return err
		}
	}
	return nil
}

// Series is one named line of (X, Y) points.
type Series struct {
	Name string
	X, Y []float64
}

// Lines renders one or more series as an ASCII scatter/line chart of
// the given dimensions. Each series uses its own glyph; overlapping
// points show the glyph of the later series.
func Lines(w io.Writer, title string, series []Series, width, height int) error {
	if width < 20 {
		width = 72
	}
	if height < 5 {
		height = 18
	}
	glyphs := []byte{'*', 'o', '+', 'x', '@', '%'}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d X for %d Y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("plot: no points")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			c := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			r := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			grid[height-1-r][c] = g
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	legend := make([]string, len(series))
	for i, s := range series {
		legend[i] = fmt.Sprintf("%c=%s", glyphs[i%len(glyphs)], s.Name)
	}
	if _, err := fmt.Fprintf(w, "  [%s]\n", strings.Join(legend, "  ")); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  y: %.4g .. %.4g\n", minY, maxY); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "  |%s\n", string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "  +%s\n  x: %.4g .. %.4g\n",
		strings.Repeat("-", width), minX, maxX); err != nil {
		return err
	}
	return nil
}

// CSV writes a header row and aligned columns of values, for external
// plotting of any figure.
func CSV(w io.Writer, header []string, rows [][]float64) error {
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("plot: row has %d cells for %d columns", len(row), len(header))
		}
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = fmt.Sprintf("%g", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}
