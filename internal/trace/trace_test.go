package trace_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flit"
	"repro/internal/trace"
)

// TestSamplerDeterminism pins the sampling contract: a pure function
// of (seed, id) with the documented edge rates.
func TestSamplerDeterminism(t *testing.T) {
	none := trace.NewSampler(7, 0)
	all := trace.NewSampler(7, 1)
	s := trace.NewSampler(7, 16)
	s2 := trace.NewSampler(7, 16)
	other := trace.NewSampler(8, 16)
	hits, diff := 0, 0
	const n = 1 << 16
	for id := int64(0); id < n; id++ {
		if none.Sample(id) {
			t.Fatal("every=0 sampled a packet")
		}
		if !all.Sample(id) {
			t.Fatal("every=1 skipped a packet")
		}
		if s.Sample(id) != s2.Sample(id) {
			t.Fatal("same (seed, every) disagreed")
		}
		if s.Sample(id) {
			hits++
		}
		if s.Sample(id) != other.Sample(id) {
			diff++
		}
	}
	want := n / 16
	if hits < want/2 || hits > want*2 {
		t.Fatalf("1-in-16 sampler hit %d of %d", hits, n)
	}
	if diff == 0 {
		t.Fatal("different seeds elected identical packets")
	}
}

// TestRecordsMergeOrder drives two router recorders and the mesh ring
// directly and pins the deterministic merge: (cycle, kind, ring), with
// inject before hop before deliver within a cycle.
func TestRecordsMergeOrder(t *testing.T) {
	tr := trace.New(trace.Config{SampleEvery: 1, Flows: 4})
	r1 := tr.AddRouter(1, 2, 1, 4)
	r0 := tr.AddRouter(0, 2, 1, 4)
	hop := func(rt interface {
		HeadArrived(port, vc int, h flit.Flit, cycle int64)
		HeadEligible(port, vc int, pktID, cycle int64)
		Granted(port, vc, outPort, outVC int, pktID, cycle int64) bool
		Departed(inPort, inVC, outPort, outVC int, tail flit.Flit, cycle int64)
	}, pkt int64, at int64) {
		h := flit.Flit{Kind: flit.Head, PktID: pkt, Flow: 1, Dst: 3}
		rt.HeadArrived(0, 0, h, at)
		rt.HeadEligible(0, 0, pkt, at)
		if !rt.Granted(0, 0, 1, 0, pkt, at+1) {
			t.Fatalf("pkt %d not traced", pkt)
		}
		rt.Departed(0, 0, 1, 0, flit.Flit{Kind: flit.Tail, PktID: pkt, Flow: 1, Dst: 3, Seq: 1}, at+3)
	}
	tr.Inject(5, 0, 3, 1, 2, 10) // cycle 10: inject
	hop(r1, 5, 7)                // departs cycle 10 on router 1
	hop(r0, 6, 7)                // departs cycle 10 on router 0
	tr.Deliver(flit.Flit{Kind: flit.Tail, PktID: 7, Flow: 1, Dst: 3, Seq: 1}, 2, 4, 10)
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	wantKind := []trace.Kind{trace.KindInject, trace.KindHop, trace.KindHop, trace.KindDeliver}
	for i, k := range wantKind {
		if recs[i].Kind != k {
			t.Fatalf("record %d kind = %v, want %v", i, recs[i].Kind, k)
		}
	}
	if recs[1].Router != 0 || recs[2].Router != 1 {
		t.Fatalf("same-cycle hops not in ring order: routers %d, %d", recs[1].Router, recs[2].Router)
	}
	// Records must be repeatable (non-destructive rings).
	again := tr.Records()
	if len(again) != len(recs) {
		t.Fatalf("second Records call returned %d records, want %d", len(again), len(recs))
	}
}

// TestFaultCycles pins the export-time fault attribution overlap math.
func TestFaultCycles(t *testing.T) {
	rec := trace.Record{Kind: trace.KindHop, Router: 5, OutPort: 1, Grant: 100, Cycle: 119}
	ws := []trace.FaultWindow{
		{Router: 5, Port: 1, At: 110, End: 130},           // overlaps [110,119] = 10
		{Router: 5, Port: 2, At: 0, End: 1000},            // wrong port
		{Router: 6, Port: -1, At: 0, End: 1000},           // wrong router
		{Router: 5, Port: -1, At: 90, End: 102},           // freeze overlaps [100,101] = 2
		{Router: 5, Port: 1, At: 200, End: math.MaxInt64}, // after the span
	}
	if n := trace.FaultCycles(rec, ws); n != 12 {
		t.Fatalf("FaultCycles = %d, want 12", n)
	}
	if n := trace.FaultCycles(trace.Record{Kind: trace.KindInject}, ws); n != 0 {
		t.Fatalf("inject records must not attribute fault cycles, got %d", n)
	}
}

// TestAuditFlagsBadSpans feeds the auditor records violating each span
// invariant and checks they are all reported.
func TestAuditFlagsBadSpans(t *testing.T) {
	recs := []trace.Record{
		{Kind: trace.KindHop, Arrive: 5, Eligible: 4, Grant: 6, Cycle: 7},             // order
		{Kind: trace.KindHop, Arrive: 0, Eligible: 0, Grant: 0, Cycle: 2, Contend: 9}, // decomposition
		{Kind: trace.KindDeliver, Arrive: 10, Cycle: 9},                               // deliver < inject
		{Kind: trace.KindHop, Arrive: 0, Eligible: 1, Grant: 2, Cycle: 5},             // clean
	}
	var got []string
	n := trace.Audit(recs, func(cycle int64, invariant string, flow int, format string, argv ...any) {
		got = append(got, invariant)
	})
	if n != 3 || len(got) != 3 {
		t.Fatalf("Audit reported %d/%d violations, want 3", n, len(got))
	}
	want := []string{"trace-span-order", "trace-decomposition", "trace-span-order"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("violation %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestWriteRoundTable pins the round-table format core's golden tests
// depend on (core delegates its Figure 3 rendering here).
func TestWriteRoundTable(t *testing.T) {
	rounds := []trace.Round{{
		Round: 1, PrevMaxSC: 0, Visits: 2, MaxSC: 3,
		Ops: []trace.RoundOp{
			{Flow: 0, Allowance: 4, Sent: 4, Surplus: 0},
			{Flow: 1, Allowance: 4, Sent: 1, Surplus: 3, Left: true},
		},
	}}
	var buf bytes.Buffer
	if err := trace.WriteRoundTable(&buf, rounds); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"Round 1 (PreviousMaxSC=0, visits=2)",
		"  flow 0: A=4    sent=4    SC=0",
		"  flow 1: A=4    sent=1    SC=3     [drained]",
		"  MaxSC=3",
		"",
	}, "\n")
	if buf.String() != want {
		t.Fatalf("round table:\n%q\nwant:\n%q", buf.String(), want)
	}
}

// TestEngineTrace wires the recorder into a single-server engine run
// and checks the spans: one inject and one hop per packet, grant
// derived from occupancy, records in merge order.
func TestEngineTrace(t *testing.T) {
	et := trace.NewEngineTrace(3, 1, 0)
	cfg := engine.Config{Flows: 2, Scheduler: core.New()}
	et.Wire(&cfg.OnInject, &cfg.OnDeparture)
	e, err := engine.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := e.Inject(flit.Packet{Flow: i % 2, Length: 3}); err != nil {
			t.Fatal(err)
		}
	}
	if _, drained := e.RunUntilDrained(1000); !drained {
		t.Fatal("engine did not drain")
	}
	recs := et.Records()
	inj, hops := 0, 0
	for i, r := range recs {
		if i > 0 && recs[i-1].Cycle > r.Cycle {
			t.Fatalf("records out of cycle order at %d", i)
		}
		switch r.Kind {
		case trace.KindInject:
			inj++
		case trace.KindHop:
			hops++
			if r.Grant+int64(r.Len)-1+int64(r.CrdWait) != r.Cycle {
				t.Fatalf("hop span inconsistent: grant=%d len=%d crd=%d depart=%d",
					r.Grant, r.Len, r.CrdWait, r.Cycle)
			}
		}
	}
	if inj != 6 || hops != 6 {
		t.Fatalf("got %d injects, %d hops; want 6 each", inj, hops)
	}
	if et.Dropped() != 0 {
		t.Fatalf("dropped %d records", et.Dropped())
	}
	if n := trace.Audit(recs, func(int64, string, int, string, ...any) {}); n != 0 {
		t.Fatalf("%d span violations", n)
	}
}

// TestExportsDeterministic renders the same records twice through both
// exporters and requires byte equality, plus spot-checks line shape.
func TestExportsDeterministic(t *testing.T) {
	tr := trace.New(trace.Config{SampleEvery: 1, Flows: 2})
	tr.Inject(1, 0, 3, 1, 2, 5)
	tr.Deliver(flit.Flit{Kind: flit.Tail, PktID: 1, Flow: 1, Dst: 3, Seq: 1}, 2, 4, 12)
	recs := tr.Records()
	var a, b bytes.Buffer
	for _, w := range []*bytes.Buffer{&a, &b} {
		if err := trace.WriteJSONL(w, recs, nil); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteChrome(w, recs, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("exports are not deterministic")
	}
	out := a.String()
	for _, want := range []string{
		`{"ev":"inject","pkt":1,"flow":1,"src":0,"dst":3,"len":2,"cycle":5}`,
		`{"ev":"deliver","pkt":1,"flow":1,"dst":3,"inject":9,"cycle":12,"latency":4}`,
		`"name":"process_name"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q in:\n%s", want, out)
		}
	}
}
