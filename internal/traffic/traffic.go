// Package traffic provides the workload generators behind the
// paper's experiments: per-flow arrival processes (Bernoulli and
// Poisson packet arrivals, always-backlogged sources, on/off bursts,
// transient congestion windows) combined with the packet-length
// distributions of package rng, plus trace record/replay.
//
// The paper specifies rates as "packets per second"; the simulations
// here use packets per cycle — only rate ratios matter in every
// experiment (e.g. "the arrival rate into flow 3 is twice the rate of
// other flows").
package traffic

import (
	"repro/internal/flit"
	"repro/internal/rng"
)

// QueueView lets closed-loop sources observe queue state (the
// always-backlogged source tops queues up). Implemented by the
// engine.
type QueueView interface {
	// QueueLen returns the number of packets queued for flow,
	// including the packet currently in service.
	QueueLen(flow int) int
}

// Source generates packet arrivals. Arrivals is called once per cycle
// in increasing cycle order and returns the packets arriving at that
// cycle (nil for none). The returned slice is only valid until the
// next call.
type Source interface {
	Arrivals(cycle int64, q QueueView) []flit.Packet
}

// Bernoulli emits, each cycle, one packet with probability Rate
// (packets/cycle) for its flow, with lengths drawn from Dist.
type Bernoulli struct {
	Flow int
	Rate float64
	Dist rng.LengthDist
	Src  *rng.Source
	buf  [1]flit.Packet
}

// NewBernoulli returns a Bernoulli arrival process for flow.
func NewBernoulli(flow int, rate float64, dist rng.LengthDist, src *rng.Source) *Bernoulli {
	if rate < 0 || rate > 1 {
		panic("traffic: Bernoulli rate outside [0,1]")
	}
	return &Bernoulli{Flow: flow, Rate: rate, Dist: dist, Src: src}
}

// Arrivals implements Source.
func (b *Bernoulli) Arrivals(cycle int64, q QueueView) []flit.Packet {
	if !b.Src.Bernoulli(b.Rate) {
		return nil
	}
	b.buf[0] = flit.Packet{Flow: b.Flow, Length: b.Dist.Draw(b.Src)}
	return b.buf[:]
}

// Poisson emits a Poisson-distributed number of packets per cycle
// with the given mean rate (packets/cycle), allowing rates above 1.
type Poisson struct {
	Flow int
	Rate float64
	Dist rng.LengthDist
	Src  *rng.Source
	buf  []flit.Packet
}

// NewPoisson returns a Poisson arrival process for flow.
func NewPoisson(flow int, rate float64, dist rng.LengthDist, src *rng.Source) *Poisson {
	if rate < 0 {
		panic("traffic: negative Poisson rate")
	}
	return &Poisson{Flow: flow, Rate: rate, Dist: dist, Src: src}
}

// Arrivals implements Source.
func (p *Poisson) Arrivals(cycle int64, q QueueView) []flit.Packet {
	k := p.Src.Poisson(p.Rate)
	if k == 0 {
		return nil
	}
	p.buf = p.buf[:0]
	for i := 0; i < k; i++ {
		p.buf = append(p.buf, flit.Packet{Flow: p.Flow, Length: p.Dist.Draw(p.Src)})
	}
	return p.buf
}

// Backlogged keeps its flow's queue topped up to Depth packets, so
// the flow is active for the entire run — the regime of the Figure 4
// and Figure 6 measurements ("we ensure that all the flows are
// active").
type Backlogged struct {
	Flow  int
	Depth int
	Dist  rng.LengthDist
	Src   *rng.Source
	buf   []flit.Packet
}

// NewBacklogged returns an always-backlogged source for flow.
func NewBacklogged(flow, depth int, dist rng.LengthDist, src *rng.Source) *Backlogged {
	if depth < 1 {
		panic("traffic: Backlogged depth < 1")
	}
	return &Backlogged{Flow: flow, Depth: depth, Dist: dist, Src: src}
}

// Arrivals implements Source.
func (b *Backlogged) Arrivals(cycle int64, q QueueView) []flit.Packet {
	need := b.Depth - q.QueueLen(b.Flow)
	if need <= 0 {
		return nil
	}
	b.buf = b.buf[:0]
	for i := 0; i < need; i++ {
		b.buf = append(b.buf, flit.Packet{Flow: b.Flow, Length: b.Dist.Draw(b.Src)})
	}
	return b.buf
}

// OnOff is a two-state bursty source: in the On state it emits
// packets at OnRate per cycle (Bernoulli); state dwell times are
// geometric with the given mean cycles. It models the bursty sources
// FCFS fails to isolate (Section 2).
type OnOff struct {
	Flow            int
	OnRate          float64
	MeanOn, MeanOff float64
	Dist            rng.LengthDist
	Src             *rng.Source
	on              bool
	buf             [1]flit.Packet
}

// NewOnOff returns an on/off source starting in the Off state.
func NewOnOff(flow int, onRate, meanOn, meanOff float64, dist rng.LengthDist, src *rng.Source) *OnOff {
	if onRate < 0 || onRate > 1 || meanOn < 1 || meanOff < 1 {
		panic("traffic: invalid OnOff parameters")
	}
	return &OnOff{Flow: flow, OnRate: onRate, MeanOn: meanOn, MeanOff: meanOff, Dist: dist, Src: src}
}

// Arrivals implements Source.
func (o *OnOff) Arrivals(cycle int64, q QueueView) []flit.Packet {
	// Geometric dwell: leave the current state with prob 1/mean.
	if o.on {
		if o.Src.Bernoulli(1 / o.MeanOn) {
			o.on = false
		}
	} else {
		if o.Src.Bernoulli(1 / o.MeanOff) {
			o.on = true
		}
	}
	if !o.on || !o.Src.Bernoulli(o.OnRate) {
		return nil
	}
	o.buf[0] = flit.Packet{Flow: o.Flow, Length: o.Dist.Draw(o.Src)}
	return o.buf[:]
}

// Window gates an inner source to the cycle interval [From, To): the
// transient-congestion shape of Figure 5, where injection runs for
// 10,000 cycles and then halts while the queues drain.
type Window struct {
	Inner    Source
	From, To int64
}

// NewWindow returns a windowed source.
func NewWindow(inner Source, from, to int64) *Window {
	if to < from {
		panic("traffic: Window with to < from")
	}
	return &Window{Inner: inner, From: from, To: to}
}

// Arrivals implements Source.
func (w *Window) Arrivals(cycle int64, q QueueView) []flit.Packet {
	if cycle < w.From || cycle >= w.To {
		return nil
	}
	return w.Inner.Arrivals(cycle, q)
}

// Multi combines several sources into one.
type Multi struct {
	Sources []Source
	buf     []flit.Packet
}

// NewMulti returns a source combining the given sources.
func NewMulti(sources ...Source) *Multi { return &Multi{Sources: sources} }

// Arrivals implements Source.
func (m *Multi) Arrivals(cycle int64, q QueueView) []flit.Packet {
	m.buf = m.buf[:0]
	for _, s := range m.Sources {
		m.buf = append(m.buf, s.Arrivals(cycle, q)...)
	}
	if len(m.buf) == 0 {
		return nil
	}
	return m.buf
}
