package bounds

import (
	"fmt"
	"math"

	"repro/internal/check"
	"repro/internal/engine"
	"repro/internal/flit"
)

// Reporter receives violation reports. check.Recorder satisfies it,
// so bounds violations land in the same structured, cycle-stamped
// store (and obs counter) as the Lemma 1 invariants.
type Reporter interface {
	Report(cycle int64, invariant string, flow int, format string, argv ...any)
}

// DefaultEps is the slack added to a bound before declaring a
// violation, absorbing float rounding in the curve arithmetic.
// Observed values are integers and bounds are O(1e0..1e5), so any
// true violation clears this by whole cycles.
const DefaultEps = 1e-6

// Checker validates every observed per-flow delay and backlog against
// the analytic bound for the configuration. It attaches to the engine
// callbacks (chaining any already-installed observer), measures each
// flow's tightest token-bucket burst online at the declared envelope
// rate, and reports breaches through a Reporter.
//
// Bounds depend on the measured bursts, which only grow, and every
// bound is monotone nondecreasing in every flow's burst. The checker
// exploits that: it caches the bound computed at the last burst
// estimate as a fast-path threshold, and on an apparent breach
// recomputes with the current estimates before reporting. A stale
// (smaller) cached bound can cause a spurious recompute, never a
// missed violation.
//
// One Checker per simulation; not safe for concurrent use.
type Checker struct {
	cfg  Config
	disc Discipline
	rep  Reporter
	eps  float64

	// Streaming tightest-burst envelope per flow: with cumulative
	// arrivals A and declared rate rho, the tightest sigma so far is
	// max over arrival instants t of A(t+) - rho*t - min earlier
	// deviation. minDev starts at 0 (the empty prefix at t = 0).
	arrived []float64
	minDev  []float64
	sigma   []float64

	backlog    []int64
	maxBacklog []int64
	maxDelay   []int64
	departs    []int64

	delayCache   []float64
	backlogCache []float64
	delayViol    []int64
	backlogViol  []int64
}

// NewChecker builds a checker for the named scheduler over cfg. The
// Sigma fields of cfg's envelopes seed the burst estimates (zero is
// fine: the estimator grows them from observed arrivals).
func NewChecker(cfg Config, schedName string, rep Reporter) (*Checker, error) {
	disc, err := ParseDiscipline(schedName)
	if err != nil {
		return nil, err
	}
	cfg.validate()
	if rep == nil {
		return nil, fmt.Errorf("bounds: checker needs a Reporter")
	}
	n := len(cfg.Flows)
	// Private copy of the flow table: bound computations substitute
	// the live burst estimates into it.
	cfg.Flows = append([]FlowSpec(nil), cfg.Flows...)
	c := &Checker{
		cfg:          cfg,
		disc:         disc,
		rep:          rep,
		eps:          DefaultEps,
		arrived:      make([]float64, n),
		minDev:       make([]float64, n),
		sigma:        make([]float64, n),
		backlog:      make([]int64, n),
		maxBacklog:   make([]int64, n),
		maxDelay:     make([]int64, n),
		departs:      make([]int64, n),
		delayCache:   make([]float64, n),
		backlogCache: make([]float64, n),
		delayViol:    make([]int64, n),
		backlogViol:  make([]int64, n),
	}
	for i := range c.sigma {
		c.sigma[i] = math.Max(cfg.Flows[i].Arrival.Sigma, 0)
		c.delayCache[i] = -1 // force a recompute on first use
		c.backlogCache[i] = -1
	}
	return c, nil
}

// Wire chains the checker onto the engine config's OnInject and
// OnDeparture callbacks, preserving any observer already installed.
func (c *Checker) Wire(ec *engine.Config) {
	prevInj := ec.OnInject
	ec.OnInject = func(p flit.Packet, cycle int64) {
		if prevInj != nil {
			prevInj(p, cycle)
		}
		c.OnInject(p, cycle)
	}
	prevDep := ec.OnDeparture
	ec.OnDeparture = func(p flit.Packet, cycle int64, occupancy int64) {
		if prevDep != nil {
			prevDep(p, cycle, occupancy)
		}
		c.OnDeparture(p, cycle)
	}
}

// OnInject feeds an admitted packet to the envelope estimator and
// checks the flow's backlog against its bound. Exposed for callers
// that drive the engine callbacks themselves.
func (c *Checker) OnInject(p flit.Packet, cycle int64) {
	f := p.Flow
	if f < 0 || f >= len(c.cfg.Flows) {
		panic(fmt.Sprintf("bounds: injected flow %d outside configured flows [0, %d)", f, len(c.cfg.Flows)))
	}
	spec := c.cfg.Flows[f]
	if p.Length > spec.LMax || p.Length < spec.LMin {
		c.rep.Report(cycle, check.InvBacklogBound, f,
			"packet length %d outside declared range [%d, %d]; bounds assume the declaration",
			p.Length, spec.LMin, spec.LMax)
	}
	t := float64(cycle)
	dev := c.arrived[f] - spec.Arrival.Rho*t
	if dev < c.minDev[f] {
		c.minDev[f] = dev
	}
	c.arrived[f] += float64(p.Length)
	if s := c.arrived[f] - spec.Arrival.Rho*t - c.minDev[f]; s > c.sigma[f] {
		c.sigma[f] = s
	}

	c.backlog[f] += int64(p.Length)
	if c.backlog[f] > c.maxBacklog[f] {
		c.maxBacklog[f] = c.backlog[f]
	}
	b := float64(c.backlog[f])
	if b > c.backlogCache[f]+c.eps {
		c.backlogCache[f] = c.bound(f, false)
		if b > c.backlogCache[f]+c.eps {
			c.backlogViol[f]++
			c.rep.Report(cycle, check.InvBacklogBound, f,
				"backlog %d flits exceeds %s bound %.3f (burst estimate %.3f, rate %.4f)",
				c.backlog[f], c.disc, c.backlogCache[f], c.sigma[f], spec.Arrival.Rho)
		}
	}
}

// OnDeparture checks a completed packet's delay against the flow's
// bound. Exposed for callers driving the callbacks themselves.
func (c *Checker) OnDeparture(p flit.Packet, cycle int64) {
	f := p.Flow
	if f < 0 || f >= len(c.cfg.Flows) {
		panic(fmt.Sprintf("bounds: departed flow %d outside configured flows [0, %d)", f, len(c.cfg.Flows)))
	}
	c.departs[f]++
	c.backlog[f] -= int64(p.Length)
	if c.backlog[f] < 0 {
		c.backlog[f] = 0 // departure of a packet injected before Wire
	}
	// Inclusive sojourn: a length-L packet arriving into an empty
	// system at cycle t finishes at t+L-1, so delay L == the
	// continuous-time L/C bound at C = 1.
	delay := cycle - p.Arrival + 1
	if delay > c.maxDelay[f] {
		c.maxDelay[f] = delay
	}
	d := float64(delay)
	if d > c.delayCache[f]+c.eps {
		c.delayCache[f] = c.bound(f, true)
		if d > c.delayCache[f]+c.eps {
			c.delayViol[f]++
			c.rep.Report(cycle, check.InvDelayBound, f,
				"packet %d delay %d cycles exceeds %s bound %.3f (burst estimate %.3f, rate %.4f)",
				p.ID, delay, c.disc, c.delayCache[f], c.sigma[f], c.cfg.Flows[f].Arrival.Rho)
		}
	}
}

// bound computes the flow's current delay (or backlog) bound from the
// live burst estimates.
func (c *Checker) bound(f int, delay bool) float64 {
	for j := range c.cfg.Flows {
		c.cfg.Flows[j].Arrival.Sigma = c.sigma[j]
	}
	if delay {
		return c.cfg.DelayBound(c.disc, f)
	}
	return c.cfg.BacklogBound(c.disc, f)
}

// Violations returns the total number of delay and backlog breaches
// detected across all flows.
func (c *Checker) Violations() int64 {
	var n int64
	for f := range c.delayViol {
		n += c.delayViol[f] + c.backlogViol[f]
	}
	return n
}

// FlowReport is the per-flow outcome of a checked run: the final
// bounds (at the measured bursts) next to the observed extremes.
type FlowReport struct {
	Flow       int     `json:"flow"`
	Rho        float64 `json:"rho"`
	SigmaHat   float64 `json:"sigma_hat"`
	Rate       float64 `json:"rate"`
	DelayBound float64 `json:"delay_bound"`
	MaxDelay   int64   `json:"max_delay"`
	BackBound  float64 `json:"backlog_bound"`
	MaxBacklog int64   `json:"max_backlog"`
	Departures int64   `json:"departures"`
	Violations int64   `json:"violations"`
}

// Report returns the per-flow summary rows, bounds evaluated at the
// final burst estimates.
func (c *Checker) Report() []FlowReport {
	out := make([]FlowReport, len(c.cfg.Flows))
	for f := range c.cfg.Flows {
		out[f] = FlowReport{
			Flow:       f,
			Rho:        c.cfg.Flows[f].Arrival.Rho,
			SigmaHat:   c.sigma[f],
			Rate:       c.cfg.GuaranteedRate(c.disc, f),
			DelayBound: c.bound(f, true),
			MaxDelay:   c.maxDelay[f],
			BackBound:  c.bound(f, false),
			MaxBacklog: c.maxBacklog[f],
			Departures: c.departs[f],
			Violations: c.delayViol[f] + c.backlogViol[f],
		}
	}
	return out
}
