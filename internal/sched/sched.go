// Package sched defines the scheduling framework the reproduction is
// built around, plus the baseline disciplines the paper compares
// against: FCFS, PBRR, WRR, DRR, SCFQ, approximate WFQ, VirtualClock
// (all packet-granularity) and FBRR (flit-granularity). The paper's
// own contribution, Elastic Round Robin, lives in package core and
// implements the same Scheduler interface.
//
// # The central constraint
//
// In a wormhole network the time a packet occupies an output queue is
// governed by downstream congestion, not by the packet's length, and
// the length itself may be unknown until the tail flit passes (packet
// delimiters only, no length field). A scheduling discipline usable in
// a wormhole switch therefore must decide *which flow to serve next*
// without knowing how much service the decision will consume.
//
// The Scheduler interface encodes that constraint in the type system:
// a Scheduler learns a packet's cost only through OnPacketDone, after
// the packet has been fully dequeued. Disciplines that fundamentally
// require a-priori lengths (DRR, the timestamp schedulers) must also
// implement LengthAware to receive lengths at arrival time — and the
// engine refuses to run LengthAware schedulers in wormhole occupancy
// mode, mirroring the paper's argument that DRR "is not suitable for
// wormhole networks".
package sched

// Scheduler selects which flow's head packet is dequeued next.
//
// The driving engine owns the per-flow FIFO queues and calls:
//
//   - OnArrival when a packet is appended to a flow's queue,
//   - NextFlow when the server is idle and at least one packet is
//     queued anywhere (the returned flow must have a queued packet),
//   - OnPacketDone when the dequeue completes, reporting the packet's
//     measured cost: its length in flits, or — in wormhole occupancy
//     mode — the number of cycles it occupied the output, which can
//     exceed its length because of downstream stalls.
//
// Implementations are not safe for concurrent use; the engine drives
// them from a single goroutine, which matches the hardware reality of
// one arbiter per output port.
type Scheduler interface {
	// Name returns a short identifier used in experiment output
	// ("ERR", "DRR", "FCFS", ...).
	Name() string

	// OnArrival notifies the scheduler that a packet has been
	// appended to flow's queue. wasEmpty reports whether the queue
	// was empty immediately before the arrival (i.e. the flow may
	// have just become active).
	OnArrival(flow int, wasEmpty bool)

	// NextFlow returns the flow whose head packet the server should
	// dequeue next. The engine guarantees at least one flow has a
	// queued packet, and that the returned flow has one.
	NextFlow() int

	// OnPacketDone reports that the packet most recently selected
	// from flow has been fully dequeued at the given cost, and
	// whether the flow's queue is now empty. cost is the first (and
	// only) size information a non-LengthAware discipline receives.
	OnPacketDone(flow int, cost int64, nowEmpty bool)
}

// LengthAware is implemented by disciplines that require packet
// lengths before dequeuing (DRR's deficit test, the finish tags of
// SCFQ/WFQ/VirtualClock). The engine calls OnArrivalLength right
// after OnArrival. Schedulers that can run in wormhole switches —
// ERR, PBRR, FCFS — deliberately do not implement this interface.
type LengthAware interface {
	Scheduler
	// OnArrivalLength supplies the length in flits of the packet
	// just reported via OnArrival.
	OnArrivalLength(flow int, length int)
}

// HeadOfLineArb marks disciplines that can arbitrate a wormhole
// router output, where flows are (input port, VC) pairs whose head
// packet is exposed one at a time. The contract beyond Scheduler:
//
//  1. the discipline must not be LengthAware (the router cannot know
//     a packet's occupancy in advance), and
//  2. when OnPacketDone reports nowEmpty == false, the discipline
//     must reschedule the flow by itself — the router will not send
//     a fresh OnArrival for the already-exposed next packet.
//
// The round-robin family (ERR, PBRR, WRR) satisfies both; FCFS
// satisfies neither (it needs one OnArrival per packet), and the
// timestamp disciplines fail (1).
type HeadOfLineArb interface {
	Scheduler
	// HeadOfLineSafe is a marker method asserting the contract above.
	HeadOfLineSafe()
}

// ClockAware is implemented by disciplines whose tags reference real
// time (VirtualClock). The engine calls SetNow at the start of every
// cycle before delivering arrivals.
type ClockAware interface {
	// SetNow tells the scheduler the current simulation cycle.
	SetNow(cycle int64)
}

// FlitScheduler selects a flow per flit rather than per packet. Only
// valid where every flit carries a flow tag — e.g. scheduling flits
// from virtual-channel output queues onto a link (FBRR). The engine
// interleaves flits of different flows' packets under a
// FlitScheduler.
type FlitScheduler interface {
	// Name returns a short identifier used in experiment output.
	Name() string

	// OnArrival notifies of a packet arrival at flow; wasEmpty
	// reports whether the flow had no queued flits before it.
	OnArrival(flow int, wasEmpty bool)

	// NextFlow returns the flow whose next flit to forward. The
	// engine guarantees at least one flow has queued flits.
	NextFlow() int

	// OnFlitDone reports one flit forwarded from flow; endOfPacket
	// marks a tail flit, nowEmpty that the flow has no flits left.
	OnFlitDone(flow int, endOfPacket, nowEmpty bool)
}
