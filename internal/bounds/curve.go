package bounds

import (
	"fmt"
	"math"
)

// TokenBucket is the affine arrival curve alpha(t) = Sigma + Rho*t
// (t > 0): a flow's cumulative arrivals in any interval of length t
// never exceed alpha(t). Sigma is the burst in flits, Rho the
// sustained rate in flits/cycle.
type TokenBucket struct {
	Sigma float64 `json:"sigma"`
	Rho   float64 `json:"rho"`
}

type point struct{ x, y float64 }

// Curve is a nondecreasing piecewise-linear function on [0, inf),
// used for strict service curves beta(t): in any interval of length t
// during which the flow is continuously backlogged, it receives at
// least beta(t) flits of service. Points are (x, y) corners with
// nondecreasing x and y; two points sharing an x encode an upward
// jump; beyond the last corner the curve continues with slope rate.
type Curve struct {
	pts  []point
	rate float64
}

// newCurve validates the corner list (first corner at x = 0, both
// coordinates nondecreasing, slope >= 0) and returns the curve.
// Violations are programmer errors and panic.
func newCurve(pts []point, rate float64) Curve {
	if len(pts) == 0 || pts[0].x != 0 {
		panic("bounds: curve must start at x = 0")
	}
	for i, p := range pts {
		if math.IsNaN(p.x) || math.IsNaN(p.y) || p.x < 0 || p.y < 0 {
			panic(fmt.Sprintf("bounds: invalid curve corner (%g, %g)", p.x, p.y))
		}
		if i > 0 && (p.x < pts[i-1].x || p.y < pts[i-1].y) {
			panic(fmt.Sprintf("bounds: curve corners not nondecreasing at %d", i))
		}
	}
	if math.IsNaN(rate) || rate < 0 {
		panic(fmt.Sprintf("bounds: invalid curve rate %g", rate))
	}
	return Curve{pts: pts, rate: rate}
}

// RateLatency returns the rate-latency service curve
// beta(t) = R * max(0, t - T).
func RateLatency(R, T float64) Curve {
	if T > 0 {
		return newCurve([]point{{0, 0}, {T, 0}}, R)
	}
	return newCurve([]point{{0, 0}}, R)
}

// invAt returns the smallest x with curve value >= level (the
// pseudo-inverse), or +inf when the curve never reaches level.
func (c Curve) invAt(level float64) float64 {
	prev := c.pts[0]
	if level <= prev.y {
		return 0
	}
	for _, p := range c.pts[1:] {
		if p.y >= level {
			if p.x == prev.x {
				return p.x // jump through the level
			}
			return prev.x + (p.x-prev.x)*(level-prev.y)/(p.y-prev.y)
		}
		prev = p
	}
	if c.rate <= 0 {
		return math.Inf(1)
	}
	return prev.x + (level-prev.y)/c.rate
}

// Delay returns the horizontal deviation h(alpha, beta): the classic
// network-calculus delay bound for a flow with arrival curve alpha
// served with (strict) service curve beta, in cycles. +inf when the
// long-run service rate cannot keep up with Rho.
//
// Both curves are piecewise linear, so the deviation
// g(t) = beta^-1(alpha(t)) - t is piecewise linear in t and its
// supremum is attained at t = 0, at a t where alpha crosses a corner
// level of beta, or in the final-rate regime (one candidate level
// past the last corner covers it: beyond that point g is linear, and
// the stability check rules out growth).
func Delay(a TokenBucket, c Curve) float64 {
	if a.Rho > c.rate {
		return math.Inf(1)
	}
	sigma := math.Max(a.Sigma, 0)
	best := c.invAt(sigma) // t = 0
	if a.Rho > 0 {
		for _, p := range c.pts {
			if p.y > sigma {
				t := (p.y - sigma) / a.Rho
				best = math.Max(best, c.invAt(p.y)-t)
			}
		}
		last := math.Max(sigma, c.pts[len(c.pts)-1].y) + 1
		t := (last - sigma) / a.Rho
		best = math.Max(best, c.invAt(last)-t)
	}
	return math.Max(best, 0)
}

// Backlog returns the vertical deviation v(alpha, beta): the bound on
// the flow's backlog in flits. +inf when the long-run service rate
// cannot keep up with Rho.
//
// alpha - beta is piecewise linear with corners only at beta's
// corners (alpha is affine), so the supremum is attained at a corner
// of beta; at an upward jump the lower corner dominates and both are
// enumerated. Beyond the last corner the difference is nonincreasing
// by the stability check.
func Backlog(a TokenBucket, c Curve) float64 {
	if a.Rho > c.rate {
		return math.Inf(1)
	}
	sigma := math.Max(a.Sigma, 0)
	best := 0.0
	for _, p := range c.pts {
		best = math.Max(best, sigma+a.Rho*p.x-p.y)
	}
	return best
}

// minOver returns the tightest bound across alternative valid service
// curves: every curve in cs is a correct lower bound on service, so
// the smallest bound any of them yields is itself a correct bound.
func minOver(cs []Curve, bound func(Curve) float64) float64 {
	best := math.Inf(1)
	for _, c := range cs {
		best = math.Min(best, bound(c))
	}
	return best
}
