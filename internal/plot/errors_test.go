package plot

import (
	"errors"
	"testing"
)

// failWriter fails after n successful writes.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errors.New("sink full")
	}
	f.left--
	return len(p), nil
}

func TestBarPropagatesWriteErrors(t *testing.T) {
	for n := 0; n < 3; n++ {
		w := &failWriter{left: n}
		if err := Bar(w, "t", []string{"a", "b"}, []float64{1, 2}, 10); err == nil {
			t.Errorf("Bar with writer failing at %d returned nil", n)
		}
	}
}

func TestLinesPropagatesWriteErrors(t *testing.T) {
	s := []Series{{Name: "x", X: []float64{0, 1}, Y: []float64{0, 1}}}
	for n := 0; n < 5; n++ {
		w := &failWriter{left: n}
		if err := Lines(w, "t", s, 30, 6); err == nil {
			t.Errorf("Lines with writer failing at %d returned nil", n)
		}
	}
}

func TestCSVPropagatesWriteErrors(t *testing.T) {
	for n := 0; n < 2; n++ {
		w := &failWriter{left: n}
		if err := CSV(w, []string{"a"}, [][]float64{{1}}); err == nil {
			t.Errorf("CSV with writer failing at %d returned nil", n)
		}
	}
}

func TestLinesGlyphCycling(t *testing.T) {
	// More series than glyphs: glyphs wrap without panicking.
	var series []Series
	for i := 0; i < 8; i++ {
		series = append(series, Series{
			Name: string(rune('a' + i)),
			X:    []float64{0, 1},
			Y:    []float64{float64(i), float64(i + 1)},
		})
	}
	w := &failWriter{left: 1 << 20}
	if err := Lines(w, "many", series, 40, 10); err != nil {
		t.Fatal(err)
	}
}
