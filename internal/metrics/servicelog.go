package metrics

import "repro/internal/rng"

// ServiceLog records, cycle by cycle, which flow the server forwarded
// a flit from, in a compact form that supports Sent_i(t1, t2) queries
// for arbitrary intervals. It is the data structure behind Figure 6's
// "average relative fairness over 10,000 randomly chosen intervals".
//
// Storage: one byte per cycle (flow id, or Idle) plus per-flow
// checkpointed prefix counts every stride cycles, so a query costs
// O(stride) and a 4-million-cycle run costs ~4 MB.
type ServiceLog struct {
	n      int
	stride int
	seq    []uint8
	// checkpoints[k][f] = flits served to flow f in cycles [0, k*stride).
	checkpoints [][]int64
	totals      []int64
	idle        int64
	stalled     int64
}

// Idle marks a cycle in which no flit was forwarded and no packet
// occupied the output.
const Idle = 0xFF

// Stalled marks a cycle in which a packet occupied the output but
// downstream congestion blocked its flit — occupancy without service,
// the wormhole phenomenon. Stalled cycles count as busy time in
// Utilization; recording them as Idle (the historical behaviour)
// undercounts how long the output was actually held.
const Stalled = 0xFE

// NewServiceLog returns a log for n flows (n <= 254; 0xFE and 0xFF
// are the Stalled and Idle markers) with the given checkpoint stride
// (0 means a sensible default).
func NewServiceLog(n, stride int) *ServiceLog {
	return NewServiceLogCap(n, stride, 0)
}

// NewServiceLogCap is NewServiceLog with a capacity hint: the
// expected number of recorded cycles (0 for unknown). The hint
// preallocates the per-cycle sequence and the checkpoint table so a
// multi-million-cycle run records without append growth — on a
// 4M-cycle Figure 6 run the unhinted log re-copies its 4 MB sequence
// ~20 times as append doubles it (see BenchmarkServiceLogRecord).
// Recording beyond the hint is fine; the log just grows again.
func NewServiceLogCap(n, stride int, expectCycles int64) *ServiceLog {
	if n < 1 || n > 254 {
		panic("metrics: ServiceLog supports 1..254 flows")
	}
	if stride <= 0 {
		stride = 4096
	}
	l := &ServiceLog{
		n:      n,
		stride: stride,
		totals: make([]int64, n),
	}
	if expectCycles > 0 {
		l.seq = make([]uint8, 0, expectCycles)
		l.checkpoints = make([][]int64, 0, expectCycles/int64(stride)+1)
	}
	l.checkpoints = append(l.checkpoints, make([]int64, n))
	return l
}

// Record appends one cycle: the flow served, Idle, or Stalled.
func (l *ServiceLog) Record(flow int) {
	if flow == Idle {
		l.seq = append(l.seq, Idle)
		l.idle++
	} else if flow == Stalled {
		l.seq = append(l.seq, Stalled)
		l.stalled++
	} else {
		if flow < 0 || flow >= l.n {
			panic("metrics: ServiceLog flow out of range")
		}
		l.seq = append(l.seq, uint8(flow))
		l.totals[flow]++
	}
	if len(l.seq)%l.stride == 0 {
		cp := make([]int64, l.n)
		copy(cp, l.totals)
		l.checkpoints = append(l.checkpoints, cp)
	}
}

// Cycles returns the number of recorded cycles.
func (l *ServiceLog) Cycles() int64 { return int64(len(l.seq)) }

// Total returns the cumulative flits served to flow over the whole
// log.
func (l *ServiceLog) Total(flow int) int64 { return l.totals[flow] }

// IdleCycles returns the number of recorded cycles in which the
// output was neither forwarding nor occupied.
func (l *ServiceLog) IdleCycles() int64 { return l.idle }

// StalledCycles returns the number of recorded cycles in which the
// output was occupied by a packet but blocked by downstream
// congestion.
func (l *ServiceLog) StalledCycles() int64 { return l.stalled }

// Utilization returns the fraction of recorded cycles in which the
// output was busy — forwarding a flit or occupied by a stalled
// packet. It is 0 for an empty log.
func (l *ServiceLog) Utilization() float64 {
	if len(l.seq) == 0 {
		return 0
	}
	return float64(int64(len(l.seq))-l.idle) / float64(len(l.seq))
}

// CumServed returns the flits served to flow in cycles [0, t).
func (l *ServiceLog) CumServed(flow int, t int64) int64 {
	if t <= 0 {
		return 0
	}
	if t > int64(len(l.seq)) {
		t = int64(len(l.seq))
	}
	k := t / int64(l.stride)
	c := l.checkpoints[k][flow]
	for i := k * int64(l.stride); i < t; i++ {
		if l.seq[i] == uint8(flow) {
			c++
		}
	}
	return c
}

// Sent returns Sent_flow(t1, t2), the flits served to flow in cycles
// [t1, t2).
func (l *ServiceLog) Sent(flow int, t1, t2 int64) int64 {
	return l.CumServed(flow, t2) - l.CumServed(flow, t1)
}

// FM returns the fairness measure of the interval [t1, t2): the
// maximum |Sent_i - Sent_j| over all flow pairs (Definition 1 of the
// paper, with all flows assumed active).
func (l *ServiceLog) FM(t1, t2 int64) int64 {
	var lo, hi int64
	for f := 0; f < l.n; f++ {
		s := l.Sent(f, t1, t2)
		if f == 0 {
			lo, hi = s, s
			continue
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	return hi - lo
}

// AvgFMRandomIntervals estimates the average relative fairness over k
// intervals drawn uniformly at random within [0, Cycles()), the
// Figure 6 statistic. Intervals of zero length are redrawn.
func (l *ServiceLog) AvgFMRandomIntervals(k int, src *rng.Source) float64 {
	cycles := l.Cycles()
	if cycles < 2 || k < 1 {
		return 0
	}
	var sum float64
	for i := 0; i < k; i++ {
		var a, b int64
		for a == b {
			// Int63n, not Intn: beyond-2^31-cycle runs would truncate
			// or overflow int on 32-bit platforms.
			a = src.Int63n(cycles)
			b = src.Int63n(cycles)
		}
		if a > b {
			a, b = b, a
		}
		sum += float64(l.FM(a, b))
	}
	return sum / float64(k)
}
