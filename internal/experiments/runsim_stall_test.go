package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/traffic"
)

// TestRunSimLogsStalls pins the fairness-log fix: with a stall model
// and WithLog set, occupancy-without-service cycles must be recorded
// as metrics.Stalled, not silently logged as idle time. Before the
// fix the engine fell back to OnIdle for those cycles, so utilization
// derived from the log undercounted busy time.
func TestRunSimLogsStalls(t *testing.T) {
	src := rng.New(7)
	sources := make([]traffic.Source, 2)
	for f := range sources {
		sources[f] = traffic.NewBacklogged(f, 4, rng.NewUniform(4, 8), src.Split())
	}
	res, err := RunSim(SimConfig{
		Flows:     2,
		Scheduler: core.New(),
		Source:    traffic.NewMulti(sources...),
		Cycles:    2_000,
		WithLog:   true,
		// One stall cycle before every flit: exactly half the busy
		// cycles are occupancy without service.
		Stall: engine.StallFunc(func(flow int) int { return 1 }),
	})
	if err != nil {
		t.Fatal(err)
	}
	stalled := res.Log.StalledCycles()
	if stalled == 0 {
		t.Fatal("stall model ran but the service log recorded no stalled cycles")
	}
	if idle := res.Log.IdleCycles(); idle > 2 {
		t.Errorf("backlogged run logged %d idle cycles; stalls are leaking into idle", idle)
	}
	// With one stall cycle per flit, stalled cycles should be about
	// half the log; well away from both 0 and the whole run.
	if c := res.Log.Cycles(); stalled < c/4 || stalled > 3*c/4 {
		t.Errorf("stalled %d of %d cycles, want roughly half", stalled, c)
	}
	// Stalled cycles count as busy: utilization must reflect the full
	// occupancy, not just the forwarded flits.
	if u := res.Log.Utilization(); u < 0.99 {
		t.Errorf("utilization %.3f, want ~1.0 with stalls counted as busy", u)
	}
}
