package queue

import "math/bits"

// Bitset is a fixed-capacity set over [0, n) backed by packed words,
// built for the intrusive work-lists of the wormhole router's
// event-driven arbitration: Set/Clear/Test are O(1), and iterating
// the members in ascending order costs O(words + population) — the
// property that lets a work-list visit exactly the cells a full
// ascending scan would have visited, in the same order, while paying
// only for the cells actually enqueued.
type Bitset struct {
	words []uint64
}

// NewBitset returns a Bitset over [0, n).
func NewBitset(n int) Bitset {
	return Bitset{words: make([]uint64, (n+63)/64)}
}

// BitsetOver returns a Bitset backed by the caller's word slice (its
// capacity is len(words)*64 members). The wormhole arena uses it to
// carve per-router work-list bitmaps out of one flat allocation so a
// tile's hot state is contiguous in memory.
func BitsetOver(words []uint64) Bitset { return Bitset{words: words} }

// Set adds i to the set.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Clear removes i from the set.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// Test reports whether i is in the set.
func (b *Bitset) Test(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// Any reports whether the set is non-empty.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of members.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Reset removes every member.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Words exposes the backing words for allocation-free ascending
// iteration in hot loops:
//
//	for wi, w := range b.Words() {
//		for w != 0 {
//			i := wi<<6 + bits.TrailingZeros64(w)
//			w &= w - 1
//			...
//		}
//	}
//
// Mutating bit i of word wi while iterating a copied word is safe;
// the iteration sees the copy.
func (b *Bitset) Words() []uint64 { return b.words }

// ForEach calls fn for every member in ascending order (cold paths;
// hot loops should inline over Words).
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
