package experiments

import (
	"io"
	"strings"
	"testing"
)

// renderString renders any result to a string, failing the test on
// error.
func renderString(t *testing.T, r interface{ Render(io.Writer) error }) string {
	t.Helper()
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestParallelMatchesSerial pins the worker-pool contract: every
// refactored runner must render byte-identical artifacts with
// Workers=1 (the legacy serial path) and Workers=4. Each job owns its
// seed derivation, so scheduling order cannot leak into results.
func TestParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		name string
		run  func(workers int) string
	}{
		{"table1", func(w int) string {
			p := DefaultTable1Params()
			p.Fig4.Cycles = 60_000
			p.Workers = w
			res, err := RunTable1(p)
			if err != nil {
				t.Fatal(err)
			}
			return renderString(t, res)
		}},
		{"fig4", func(w int) string {
			p := smallFig4()
			p.Cycles = 60_000
			p.Workers = w
			res, err := RunFig4(p, "all")
			if err != nil {
				t.Fatal(err)
			}
			return renderString(t, res)
		}},
		{"fig5", func(w int) string {
			p := smallFig5()
			p.BurstCycles = 2_000
			p.Repeats = 2
			p.Workers = w
			res, err := RunFig5(p, "all")
			if err != nil {
				t.Fatal(err)
			}
			return renderString(t, res)
		}},
		{"fig6", func(w int) string {
			p := smallFig6()
			p.Cycles = 40_000
			p.Intervals = 200
			p.MaxFlows = 3
			p.Workers = w
			res, err := RunFig6(p)
			if err != nil {
				t.Fatal(err)
			}
			return renderString(t, res)
		}},
		{"fig6ext", func(w int) string {
			p := DefaultFig6ExtParams()
			p.Cycles = 40_000
			p.Intervals = 200
			p.PLarges = []float64{0.5, 0.05}
			p.Workers = w
			res, err := RunFig6Ext(p)
			if err != nil {
				t.Fatal(err)
			}
			return renderString(t, res)
		}},
		{"weighted", func(w int) string {
			p := DefaultWeightedParams()
			p.Cycles = 60_000
			p.Workers = w
			res, err := RunWeighted(p)
			if err != nil {
				t.Fatal(err)
			}
			return renderString(t, res)
		}},
		{"gap", func(w int) string {
			p := DefaultGapParams()
			p.Cycles = 60_000
			p.Workers = w
			res, err := RunGap(p)
			if err != nil {
				t.Fatal(err)
			}
			return renderString(t, res)
		}},
		{"parkinglot", func(w int) string {
			p := DefaultParkingLotParams()
			p.Cycles = 40_000
			p.Workers = w
			res, err := RunParkingLot(p)
			if err != nil {
				t.Fatal(err)
			}
			return renderString(t, res)
		}},
		{"nocsweep", func(w int) string {
			p := DefaultNoCSweepParams()
			p.WarmCycles = 4_000
			p.Rates = []float64{0.01, 0.03}
			p.Workers = w
			res, err := RunNoCSweep(p)
			if err != nil {
				t.Fatal(err)
			}
			return renderString(t, res)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			serial := tc.run(1)
			parallel := tc.run(4)
			if serial != parallel {
				t.Errorf("Workers=1 and Workers=4 rendered differently:\n--- serial ---\n%s\n--- parallel ---\n%s",
					serial, parallel)
			}
		})
	}
}
